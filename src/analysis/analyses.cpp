#include "analysis/analyses.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "analysis/index.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace patchwork::analysis {

std::vector<double> paper_frame_size_edges() {
  return {64, 65, 128, 256, 512, 1024, 1519, 2048, 4096, 9217};
}

double FrameSizeResult::fraction_in(double lo) const {
  for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
    if (histogram.bucket_lo(i) == lo) return histogram.fraction(i);
  }
  return 0.0;
}

double FrameSizeResult::jumbo_fraction() const {
  if (frames == 0) return 0.0;
  std::uint64_t jumbo = 0;
  for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
    if (histogram.bucket_lo(i) >= 1519) jumbo += histogram.bucket(i);
  }
  jumbo += histogram.overflow();
  return static_cast<double>(jumbo) / static_cast<double>(frames);
}

namespace {
void add_frames(FrameSizeResult& result, const AcapFile& f) {
  for (const AcapRecord& r : f.records) {
    result.histogram.add(static_cast<double>(r.wire_length));
    ++result.frames;
  }
}
}  // namespace

FrameSizeResult analyze_frame_sizes(const std::vector<AcapFile>& files) {
  FrameSizeResult result;
  for (const AcapFile& f : files) add_frames(result, f);
  return result;
}

FrameSizeResult analyze_frame_sizes_site(const std::vector<AcapFile>& files,
                                         const std::string& site) {
  FrameSizeResult result;
  for (const AcapFile& f : files) {
    if (f.site == site) add_frames(result, f);
  }
  return result;
}

FrameSizeResult analyze_frame_sizes_site(const std::vector<AcapFile>& files,
                                         const ProfileIndex& index,
                                         const std::string& site) {
  FrameSizeResult result;
  // Only the indexed positions are touched; the histogram and frame count
  // are order-insensitive sums, so skipping files cannot change the result.
  for (std::size_t pos : index.by_site(site)) {
    add_frames(result, files[pos]);
  }
  return result;
}

double HeaderOccurrenceResult::percent(net::Protocol p) const {
  if (frames == 0) return 0.0;
  return 100.0 *
         static_cast<double>(occurrences[static_cast<std::size_t>(p)]) /
         static_cast<double>(frames);
}

HeaderOccurrenceResult analyze_header_occurrence(
    const std::vector<AcapFile>& files) {
  HeaderOccurrenceResult result;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      ++result.frames;
      for (net::Protocol p : r.stack) {
        ++result.occurrences[static_cast<std::size_t>(p)];
      }
    }
  }
  return result;
}

std::vector<SiteHeaderVariety> analyze_site_header_variety(
    const std::vector<AcapFile>& files) {
  std::map<std::string, std::pair<std::set<net::Protocol>, std::size_t>> acc;
  for (const AcapFile& f : files) {
    auto& [protos, deepest] = acc[f.site];
    for (const AcapRecord& r : f.records) {
      for (net::Protocol p : r.stack) {
        switch (p) {
          case net::Protocol::kTruncated:
          case net::Protocol::kMalformed:
            break;
          default:
            protos.insert(p);
        }
      }
      deepest = std::max(deepest, r.header_depth());
    }
  }
  std::vector<SiteHeaderVariety> out;
  out.reserve(acc.size());
  for (const auto& [site, pd] : acc) {
    out.push_back(SiteHeaderVariety{site, pd.first.size(), pd.second});
  }
  return out;
}

std::vector<SiteHeaderVariety> analyze_site_header_variety(
    const std::vector<AcapFile>& files, const ProfileIndex& index) {
  std::vector<SiteHeaderVariety> out;
  const std::vector<std::string> sites = index.sites();  // Name-sorted.
  out.reserve(sites.size());
  for (const std::string& site : sites) {
    std::set<net::Protocol> protos;
    std::size_t deepest = 0;
    for (std::size_t pos : index.by_site(site)) {
      for (const AcapRecord& r : files[pos].records) {
        for (net::Protocol p : r.stack) {
          switch (p) {
            case net::Protocol::kTruncated:
            case net::Protocol::kMalformed:
              break;
            default:
              protos.insert(p);
          }
        }
        deepest = std::max(deepest, r.header_depth());
      }
    }
    out.push_back(SiteHeaderVariety{site, protos.size(), deepest});
  }
  return out;
}

std::vector<SampleFlowCount> analyze_flows_per_sample(
    const std::vector<AcapFile>& files) {
  std::vector<SampleFlowCount> out;
  out.reserve(files.size());
  for (const AcapFile& f : files) {
    std::set<FlowKey> flows;
    for (const AcapRecord& r : f.records) flows.insert(r.flow);
    out.push_back(SampleFlowCount{f.site, f.start, flows.size()});
  }
  return out;
}

namespace {

/// Fold one file's records into a flow map. Used by both the serial path
/// and every parallel chunk task (each chunk owns whole files, so per-file
/// sample counting needs no cross-task coordination).
void accumulate_file(
    const AcapFile& f,
    std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash>& out) {
  for (const AcapRecord& r : f.records) {
    FlowAggregate& agg = out[r.flow];
    if (agg.frames == 0) {
      agg.first_seen = r.timestamp + f.start;
      agg.last_seen = agg.first_seen;
    } else {
      agg.first_seen = std::min(agg.first_seen, r.timestamp + f.start);
      agg.last_seen = std::max(agg.last_seen, r.timestamp + f.start);
    }
    ++agg.frames;
    agg.wire_bytes += r.wire_length;
    if (r.tcp_flags & net::tcp_flags::kRst) ++agg.rst_frames;
  }
  // Count distinct samples per flow.
  std::set<FlowKey> in_sample;
  for (const AcapRecord& r : f.records) in_sample.insert(r.flow);
  for (const FlowKey& k : in_sample) ++out[k].samples;
}

/// Merge a partial aggregate into `dst`. Every field is a sum, min, or
/// max, so the merged value is independent of merge order — the sharded
/// path is content-identical to the single-map path by construction.
void merge_aggregate(FlowAggregate& dst, const FlowAggregate& src) {
  if (dst.frames == 0) {
    dst = src;
    return;
  }
  dst.first_seen = std::min(dst.first_seen, src.first_seen);
  dst.last_seen = std::max(dst.last_seen, src.last_seen);
  dst.frames += src.frames;
  dst.wire_bytes += src.wire_bytes;
  dst.rst_frames += src.rst_frames;
  dst.samples += src.samples;
}

}  // namespace

std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash> aggregate_flows(
    const std::vector<AcapFile>& files) {
  const std::size_t threads = util::thread_count();
  if (threads <= 1 || files.size() <= 1) {
    std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash> out;
    for (const AcapFile& f : files) accumulate_file(f, out);
    return out;
  }

  // Sharded two-phase aggregation. Phase 1 splits the files into
  // contiguous chunks, one task each; every task buckets its flows into
  // kFlowShards local maps keyed by FlowKeyHash % kFlowShards. Phase 2
  // merges shard s across all chunks (chunk order, one task per shard —
  // tasks never touch another task's shard, so no locks). The shard count
  // is fixed so the shard a flow lands in, and therefore the merged
  // content, is the same at any thread count; merge order cannot show in
  // the result anyway because every FlowAggregate field merges
  // commutatively.
  constexpr std::size_t kFlowShards = 16;
  const std::size_t chunks = std::min(threads, files.size());
  std::vector<std::array<std::unordered_map<FlowKey, FlowAggregate,
                                            FlowKeyHash>,
                         kFlowShards>>
      partial(chunks);
  util::parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = files.size() * c / chunks;
    const std::size_t hi = files.size() * (c + 1) / chunks;
    std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash> local;
    for (std::size_t f = lo; f < hi; ++f) accumulate_file(files[f], local);
    for (auto& [key, agg] : local) {
      partial[c][FlowKeyHash{}(key) % kFlowShards].emplace(key,
                                                          std::move(agg));
    }
  });

  std::array<std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash>,
             kFlowShards>
      shards;
  util::parallel_for(kFlowShards, [&](std::size_t s) {
    for (std::size_t c = 0; c < chunks; ++c) {
      for (auto& [key, agg] : partial[c][s]) {
        merge_aggregate(shards[s][key], agg);
      }
    }
  });

  std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash> out;
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  out.reserve(total);
  for (auto& shard : shards) {  // Shard order: deterministic assembly.
    for (auto& [key, agg] : shard) out.emplace(key, agg);
  }
  return out;
}

FlowDistributionResult analyze_flow_distribution(
    const std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash>& flows) {
  FlowDistributionResult result;
  std::vector<double> sizes;
  sizes.reserve(flows.size());
  for (const auto& [key, agg] : flows) {
    ++result.flows;
    result.size_histogram.add(static_cast<double>(agg.wire_bytes));
    result.duration_histogram.add(
        util::to_seconds(agg.last_seen - agg.first_seen));
    result.largest_flow_bytes =
        std::max(result.largest_flow_bytes, agg.wire_bytes);
    sizes.push_back(static_cast<double>(agg.wire_bytes));
  }
  if (!sizes.empty()) {
    const double ps[] = {50.0, 95.0, 99.0};
    const std::vector<double> qs = util::percentiles(sizes, ps);
    result.median_flow_bytes = qs[0];
    result.p95_flow_bytes = qs[1];
    result.p99_flow_bytes = qs[2];
  }
  return result;
}

TcpControlResult analyze_tcp_control(const std::vector<AcapFile>& files) {
  TcpControlResult result;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      if (!r.has(net::Protocol::kTcp)) continue;
      ++result.tcp_frames;
      using namespace net::tcp_flags;
      if (r.tcp_flags & kSyn) ++result.syn;
      if (r.tcp_flags & kFin) ++result.fin;
      if (r.tcp_flags & kRst) ++result.rst;
      // A pure ACK ends at the TCP header: nothing followed on the wire.
      if ((r.tcp_flags & kAck) && !(r.tcp_flags & (kSyn | kFin | kRst)) &&
          r.stack.back() == net::Protocol::kTcp) {
        ++result.pure_ack;
      }
    }
  }
  return result;
}

std::vector<StackCount> analyze_top_stacks(const std::vector<AcapFile>& files,
                                           std::size_t k) {
  std::map<std::string, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      std::string stack;
      for (net::Protocol p : r.stack) {
        if (!stack.empty()) stack += '/';
        stack += net::to_string(p);
      }
      ++counts[stack];
      ++total;
    }
  }
  std::vector<StackCount> out;
  out.reserve(counts.size());
  for (const auto& [stack, n] : counts) {
    out.push_back(StackCount{
        stack, n,
        total ? static_cast<double>(n) / static_cast<double>(total) : 0.0});
  }
  std::sort(out.begin(), out.end(), [](const StackCount& a,
                                       const StackCount& b) {
    if (a.frames != b.frames) return a.frames > b.frames;
    return a.stack < b.stack;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

TaggingResult analyze_tagging(const std::vector<AcapFile>& files) {
  TaggingResult result;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      ++result.frames;
      const bool vlan = r.has(net::Protocol::kVlan);
      const bool mpls = r.has(net::Protocol::kMpls);
      if (vlan) ++result.vlan_tagged;
      if (mpls) ++result.mpls_tagged;
      if (vlan && mpls) ++result.both_tagged;
      if (!vlan && !mpls) ++result.untagged;
    }
  }
  return result;
}

}  // namespace patchwork::analysis
