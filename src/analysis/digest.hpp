// The Digest step (Section 6.2.4): raw pcap -> abstract capture.
//
// "The Digest step takes raw pcap files and applies the protocol
// dissectors ... to extract information about each header, discarding
// unneeded information." Here the dissector is net::parse_bytes, the
// repository's Wireshark-dissector counterpart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/acap.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace patchwork::analysis {

/// What the gathering phase ships to the coordinator for one sample: the
/// pcap plus the instance's logs and sample metadata (Fig. 7 step 4).
struct RawCapture {
  std::string site;
  std::uint32_t port = 0;
  util::Nanos start = 0;
  util::Nanos duration = 0;
  std::uint64_t switch_drops_suspected = 0;
  std::vector<std::uint8_t> pcap;
  util::Logger logs;
};

struct DigestStats {
  std::uint64_t frames = 0;
  std::uint64_t bad_records = 0;
  std::uint64_t truncated_frames = 0;   ///< Snaplen cut into a header.
  std::uint64_t malformed_frames = 0;

  /// Fold another capture's counters in. All fields are sums, so merging is
  /// order-independent — digest_all still merges in input order so the
  /// parallel path is trivially byte-identical to the serial one.
  DigestStats& operator+=(const DigestStats& other);
};

/// Digest one capture. Invalid pcap data produces an empty AcapFile with
/// `bad_records` counted in `stats`.
AcapFile digest(const RawCapture& capture, DigestStats* stats = nullptr);

/// Digest a whole gathered profile: one task per capture on the analysis
/// thread pool (`PATCHWORK_THREADS` workers; 0 = serial), results and stats
/// assembled in input order so output is identical for any thread count.
std::vector<AcapFile> digest_all(const std::vector<RawCapture>& captures,
                                 DigestStats* stats = nullptr);

}  // namespace patchwork::analysis
