#include "analysis/operator_view.hpp"

#include <set>

namespace patchwork::analysis {

FiveTupleKey FiveTupleKey::from_flow_key(const FlowKey& key) {
  FiveTupleKey out;
  out.ip_version = key.ip_version;
  out.addr_a = key.addr_a;
  out.addr_b = key.addr_b;
  out.l4_proto = key.l4_proto;
  out.port_a = key.port_a;
  out.port_b = key.port_b;
  return out;
}

std::map<FiveTupleKey, OperatorFlowRecord> operator_flow_view(
    const std::vector<AcapFile>& files) {
  std::map<FiveTupleKey, OperatorFlowRecord> out;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      const FiveTupleKey key = FiveTupleKey::from_flow_key(r.flow);
      OperatorFlowRecord& rec = out[key];
      const util::Nanos t = f.start + r.timestamp;
      if (rec.frames == 0) {
        rec.key = key;
        rec.first_seen = t;
        rec.last_seen = t;
      } else {
        rec.first_seen = std::min(rec.first_seen, t);
        rec.last_seen = std::max(rec.last_seen, t);
      }
      ++rec.frames;
      rec.wire_bytes += r.wire_length;
    }
  }
  return out;
}

AsymmetryReport measure_asymmetry(const std::vector<AcapFile>& files) {
  AsymmetryReport report;
  // Tag-aware flows per 5-tuple key.
  std::map<FiveTupleKey, std::set<FlowKey>> grouping;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      grouping[FiveTupleKey::from_flow_key(r.flow)].insert(r.flow);
    }
  }
  report.operator_flows = grouping.size();
  for (const auto& [key, tag_flows] : grouping) {
    report.patchwork_flows += tag_flows.size();
    if (tag_flows.size() > 1) {
      ++report.collapsed_keys;
      report.hidden_flows += tag_flows.size() - 1;
    }
  }
  return report;
}

}  // namespace patchwork::analysis
