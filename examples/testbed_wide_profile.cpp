// All-experiment mode: the testbed-wide weekly profile of Section 8.2.
//
// Runs Patchwork across every production site of the federation — port
// cycling with the busiest-bias heuristic, iterative back-off where NICs
// are scarce, congestion detection at oversubscribed mirrors — then runs
// the full Digest -> Index -> Analyze -> Process pipeline and prints the
// profile. This is the program behind Figures 11-13 and 15.
//
// Build & run:  ./build/examples/testbed_wide_profile [--scrape-port N]
//
// Alongside the printed profile it writes the run's self-telemetry next to
// the output: patchwork_manifest.json (seed, config, per-stage timings,
// final counters) and patchwork_metrics.prom (Prometheus text exposition).
// With --scrape-port N (or PATCHWORK_SCRAPE=port) the same exposition is
// additionally served live at http://127.0.0.1:N/metrics — plus /healthz
// and /manifest.json — while the run progresses; with
// PATCHWORK_TRACE=path[:capacity] the run leaves a per-worker flight
// recorder timeline at `path` (Chrome trace-event JSON, open in Perfetto).
#include <cstdlib>
#include <iostream>
#include <memory>
#include <set>
#include <string>

#include "analysis/pipeline.hpp"
#include "core/coordinator.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape_server.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace patchwork;

int main(int argc, char** argv) {
  constexpr std::uint64_t kSeed = 2024;
  obs::registry().reset();  // Metrics below describe this run only.

  int scrape_port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scrape-port" && i + 1 < argc) {
      scrape_port = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: testbed_wide_profile [--scrape-port N]\n";
      return 2;
    }
  }
  // Manifest identity is fixed up front so the live /manifest.json route
  // can serve it mid-run; the same info feeds the end-of-run file write.
  obs::ManifestInfo info;
  info.seed = kSeed;
  info.config = {
      {"policy", "busiest_bias"},
      {"cycles", "3"},
      {"samples_per_run", "2"},
      {"max_frames_per_sample", "2000"},
      {"capture_method", "fpga_dpdk"},
      {"snaplen", "200"},
  };
  info.notes.push_back("testbed_wide_profile example (Section 8.2)");

  const auto manifest_provider = [info] { return obs::render_manifest(info); };
  std::unique_ptr<obs::ScrapeServer> scrape;
  if (scrape_port >= 0 && scrape_port <= 65535) {
    obs::ScrapeServerOptions scrape_options;
    scrape_options.port = static_cast<std::uint16_t>(scrape_port);
    scrape_options.manifest = manifest_provider;
    scrape = std::make_unique<obs::ScrapeServer>(std::move(scrape_options));
    if (!scrape->ok()) {
      std::cerr << "cannot bind scrape port " << scrape_port << "\n";
      return 1;
    }
  } else {
    scrape = obs::maybe_start_scrape_server_from_env(manifest_provider);
  }
  if (scrape) {
    std::cout << "scrape endpoint: http://127.0.0.1:" << scrape->port()
              << "/metrics\n";
  }
  obs::trace::configure_from_env();

  util::Rng rng(kSeed);
  testbed::Federation fed = testbed::make_fabric_like_federation(rng);
  testbed::ActivityModel activity;
  telemetry::MfLib mflib(fed);
  traffic::TrafficEngine traffic(
      fed, activity, traffic::make_site_profiles(rng, fed.site_count()),
      rng.fork());
  sim::Clock clock;
  core::Environment env(clock, fed, mflib, traffic, rng);
  env.advance(11 * util::kMinute);

  core::ProfilerConfig config;
  config.plan.policy = core::PortPolicy::kBusiestBias;  // The default.
  config.plan.busiest_bias_n = 4;
  config.plan.cycles = 3;
  config.plan.samples_per_run = 2;
  config.plan.max_frames_per_sample = 2000;
  config.capture.snaplen = 200;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;
  config.capture.anonymize = true;  // Close-to-source anonymization.

  core::Coordinator coordinator(env, config);
  const core::ProfileRun run = coordinator.run_all_experiment();

  std::cout << "Deployment over " << run.reports.size()
            << " production sites:\n"
            << "  success "
            << run.outcome_count(core::RunOutcome::kSuccess) << ", degraded "
            << run.outcome_count(core::RunOutcome::kDegraded) << ", failed "
            << run.outcome_count(core::RunOutcome::kFailed)
            << ", incomplete "
            << run.outcome_count(core::RunOutcome::kIncomplete) << "\n"
            << "  " << run.captures.size() << " samples gathered\n\n";

  // The offline phase fans out across PATCHWORK_THREADS workers (0 = serial);
  // output is byte-identical either way.
  std::cout << "Offline pipeline workers: " << util::thread_count() << "\n\n";
  const analysis::ProfileReport report = analysis::run_pipeline(run.captures);

  std::cout << "=== Testbed network profile ===\n";
  util::TextTable headline({"Metric", "Value", "Paper anchor"});
  headline.add_row({"Frames", std::to_string(report.digest_stats.frames),
                    "-"});
  headline.add_row(
      {"1519-2047 B share",
       util::fmt_percent(report.frame_sizes.fraction_in(1519), 1), "74.7%"});
  headline.add_row(
      {"65-127 B share",
       util::fmt_percent(report.frame_sizes.fraction_in(65), 1), "14.15%"});
  headline.add_row(
      {"IPv6 share",
       util::fmt_double(report.header_occurrence.percent(net::Protocol::kIpv6),
                        2),
       "1.93%"});
  headline.add_row(
      {"TCP occurrence",
       util::fmt_double(report.header_occurrence.percent(net::Protocol::kTcp),
                        1),
       "dominant"});
  headline.add_row({"Distinct flows",
                    std::to_string(report.distinct_flows), "-"});
  headline.print(std::cout);

  std::cout << "\nPer-site variety (Fig. 11 shape):\n";
  util::TextTable variety({"Site", "Distinct headers", "Deepest stack"});
  for (const auto& site : report.site_variety) {
    variety.add_row({site.site, std::to_string(site.distinct_headers),
                     std::to_string(site.deepest_stack)});
  }
  variety.print(std::cout);

  std::cout << "\nCongestion warnings logged during sampling: ";
  std::size_t congestion = 0;
  for (const auto& c : run.captures) {
    if (c.switch_drops_suspected > 0) ++congestion;
  }
  std::cout << congestion << " of " << run.captures.size() << " samples\n";

  const bool manifest_ok =
      obs::write_manifest("patchwork_manifest.json", info);
  const bool metrics_ok = obs::expose_to_file("patchwork_metrics.prom");
  std::cout << "\nSelf-telemetry: "
            << (manifest_ok ? "patchwork_manifest.json" : "(manifest FAILED)")
            << ", "
            << (metrics_ok ? "patchwork_metrics.prom" : "(metrics FAILED)")
            << "\n";
  if (obs::trace::write_env_configured()) {
    std::cout << "wrote " << obs::trace::env_configured_path()
              << " (Chrome trace-event JSON; open in Perfetto)\n";
  }
  return manifest_ok && metrics_ok ? 0 : 1;
}
