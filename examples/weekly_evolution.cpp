// Weekly profile evolution — the Section 9 community initiative.
//
// "Patchwork now runs weekly to create a profile of FABRIC's network
// traffic ... it would be useful to produce regular updates to the
// analysis of FABRIC's network profile." This example runs Patchwork once
// a week across a simulated season and tracks how the testbed's profile
// moves: aggregate load follows the deadline calendar while the
// distributional fingerprints (jumbo share, protocol mix) stay stable —
// the paper's B1 "diverse yet persistent workloads" finding.
//
// Build & run:  ./build/examples/weekly_evolution
#include <iostream>

#include "analysis/pipeline.hpp"
#include "core/coordinator.hpp"
#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"
#include "util/table.hpp"

using namespace patchwork;

int main() {
  util::Rng rng(31337);
  testbed::Federation fed = testbed::make_fabric_like_federation(rng);
  testbed::ActivityModel activity;
  telemetry::MfLib mflib(fed);
  traffic::TrafficEngine traffic(
      fed, activity, traffic::make_site_profiles(rng, fed.site_count()),
      rng.fork());
  sim::Clock clock;
  core::Environment env(clock, fed, mflib, traffic, rng);
  // Start the season in early autumn, heading into the November ramp.
  traffic.set_year_start_offset(static_cast<util::Nanos>(38 * 7) *
                                util::kDay);
  env.advance(11 * util::kMinute);

  core::ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 2;
  config.plan.max_frames_per_sample = 1200;
  config.crash_probability = 0.0;
  config.capture.snaplen = 200;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;

  util::TextTable table({"Week", "Samples", "Testbed Tbps", "Jumbo share",
                         "IPv6 share", "TCP %", "Distinct flows"});
  for (int week = 0; week < 10; ++week) {
    core::Coordinator coordinator(env, config);
    const core::ProfileRun run = coordinator.run_all_experiment();
    const analysis::ProfileReport report =
        analysis::run_pipeline(run.captures);
    const double tbps =
        env.mflib().testbed_total_tx_bps(30 * util::kMinute) / 1e12;
    table.add_row(
        {std::to_string(38 + week), std::to_string(run.captures.size()),
         util::fmt_double(tbps, 2),
         util::fmt_percent(report.frame_sizes.jumbo_fraction(), 1),
         util::fmt_double(
             report.header_occurrence.percent(net::Protocol::kIpv6), 2),
         util::fmt_double(
             report.header_occurrence.percent(net::Protocol::kTcp), 1),
         std::to_string(report.distinct_flows)});
    // Advance to the next weekly run.
    env.advance(7 * util::kDay - (env.clock().now() % (7 * util::kDay)));
  }
  table.print(std::cout);

  std::cout << "\nReading the series: aggregate load climbs into the "
               "SC-week spike (weeks 45-46)\nand falls away after, while "
               "the jumbo share and protocol mix barely move —\nworkloads "
               "on the testbed are bursty in volume but persistent in "
               "character (B1/B3).\n";
  return 0;
}
