// Weekly profile evolution — the Section 9 community initiative.
//
// "Patchwork now runs weekly to create a profile of FABRIC's network
// traffic ... it would be useful to produce regular updates to the
// analysis of FABRIC's network profile." This example runs Patchwork once
// a week across a simulated season, but unlike a one-off report it keeps
// history the way a real weekly service must: every run is boiled down to
// an epoch record and appended to the longitudinal archive
// (src/archive), a background exporter keeps a Prometheus snapshot file
// fresh while the season runs, the oldest weeks are compacted into a
// rollup under a storage budget, and the final trend table is answered
// from the archive file alone — no pcap or CSV is ever re-read.
//
// Build & run:  ./build/examples/weekly_evolution
#include <chrono>
#include <cstdio>
#include <iostream>

#include "analysis/epoch_extract.hpp"
#include "analysis/pipeline.hpp"
#include "archive/compactor.hpp"
#include "archive/query.hpp"
#include "archive/writer.hpp"
#include "core/coordinator.hpp"
#include "obs/file_exporter.hpp"
#include "obs/manifest.hpp"
#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"
#include "util/file_io.hpp"
#include "util/table.hpp"

using namespace patchwork;

int main() {
  util::Rng rng(31337);
  testbed::Federation fed = testbed::make_fabric_like_federation(rng);
  testbed::ActivityModel activity;
  telemetry::MfLib mflib(fed);
  traffic::TrafficEngine traffic(
      fed, activity, traffic::make_site_profiles(rng, fed.site_count()),
      rng.fork());
  sim::Clock clock;
  core::Environment env(clock, fed, mflib, traffic, rng);
  // Start the season in early autumn, heading into the November ramp.
  traffic.set_year_start_offset(static_cast<util::Nanos>(38 * 7) *
                                util::kDay);
  env.advance(11 * util::kMinute);

  core::ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 2;
  config.plan.max_frames_per_sample = 1200;
  config.crash_probability = 0.0;
  config.capture.snaplen = 200;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;

  // Fresh archive per invocation; a real deployment would keep appending.
  const std::string archive_path = "weekly_evolution.pwar";
  std::remove(archive_path.c_str());
  archive::ArchiveWriter writer;
  if (writer.open(archive_path) != archive::OpenError::kNone) {
    std::cerr << "cannot open " << archive_path << "\n";
    return 1;
  }

  // Keep a Prometheus snapshot fresh on disk while the season runs, the
  // way the paper's deployment stays scrapeable mid-profile.
  auto exporter = obs::start_file_exporter("weekly_evolution_metrics.prom",
                                           std::chrono::milliseconds(200));

  for (int week = 0; week < 10; ++week) {
    const util::Nanos week_start = env.clock().now();
    core::Coordinator coordinator(env, config);
    const core::ProfileRun run = coordinator.run_all_experiment();
    const analysis::ProfileReport report =
        analysis::run_pipeline(run.captures);

    obs::ManifestInfo info;
    info.seed = 31337;
    info.config = {{"week", std::to_string(38 + week)},
                   {"cycles", "2"},
                   {"samples_per_run", "2"},
                   {"capture_method", "fpga"}};
    analysis::EpochMeta meta;
    meta.label = "week" + std::to_string(38 + week);
    meta.start = week_start;
    meta.duration = 7 * util::kDay;
    meta.offered_bps = env.mflib().testbed_total_tx_bps(30 * util::kMinute);
    meta.manifest_json = obs::manifest_deterministic_section(info);
    if (!writer.append(analysis::extract_epoch_record(report, meta))) {
      std::cerr << "archive append failed\n";
      return 1;
    }
    env.advance(7 * util::kDay - (env.clock().now() % (7 * util::kDay)));
  }
  exporter->stop();
  std::cout << "metrics snapshots written: " << exporter->snapshots_written()
            << " (weekly_evolution_metrics.prom)\n";

  // Storage discipline: merge the oldest weeks into one rollup, keeping
  // the recent ones raw. Budget = 70% of the raw file, so one pass folds
  // the head of the season.
  const auto raw_bytes = util::file_size_bytes(archive_path).value_or(0);
  archive::CompactionOptions compaction;
  compaction.storage_budget_bytes = raw_bytes * 7 / 10;
  compaction.group_size = 4;
  const archive::CompactionResult compacted =
      archive::compact_archive(archive_path, compaction);
  std::cout << "archive: " << compacted.bytes_before << " -> "
            << compacted.bytes_after << " bytes, "
            << compacted.records_before << " -> " << compacted.records_after
            << " records after compaction\n\n";

  // From here on, only the archive file speaks.
  archive::OpenError open_error = archive::OpenError::kNone;
  const archive::ArchiveQuery query =
      archive::ArchiveQuery::from_file(archive_path, &open_error);
  if (open_error != archive::OpenError::kNone) {
    std::cerr << "cannot query archive: " << archive::to_string(open_error)
              << "\n";
    return 1;
  }

  const auto jumbo = query.jumbo_share();
  const auto ipv6 = query.ipv6_share();
  const auto tcp = query.tcp_share();
  const auto offered = query.offered_bps();
  const auto flows = query.flow_snippets();
  util::TextTable table({"Epochs", "Weeks", "Avg Tbps", "Jumbo share",
                         "IPv6 share", "TCP %", "Flow snippets"});
  for (std::size_t i = 0; i < jumbo.size(); ++i) {
    table.add_row({jumbo[i].label, std::to_string(jumbo[i].epoch_count),
                   util::fmt_double(offered[i].value / 1e12, 2),
                   util::fmt_percent(jumbo[i].value, 1),
                   util::fmt_double(ipv6[i].value * 100.0, 2),
                   util::fmt_double(tcp[i].value * 100.0, 1),
                   std::to_string(
                       static_cast<std::uint64_t>(flows[i].value))});
  }
  table.print(std::cout);

  std::cout << "\nHeaviest flows across the whole season (sketch bounds: "
               "true bytes in [count-error, count]):\n";
  for (const auto& entry : query.top_flows(5)) {
    std::cout << "  " << entry.key << "  <= " << entry.count << " bytes"
              << " (overcount <= " << entry.error << ")\n";
  }

  std::cout << "\nReading the series: aggregate load climbs into the "
               "SC-week spike (weeks 45-46)\nand falls away after, while "
               "the jumbo share and protocol mix barely move —\nworkloads "
               "on the testbed are bursty in volume but persistent in "
               "character (B1/B3).\nThe rolled-up head of the season "
               "answers with the same shares it had raw:\nevery trend "
               "above is a sum fold, invariant under compaction.\n";
  return 0;
}
