// Capture tuning walkthrough: the Appendix B storage-bottleneck experiment
// as a user-facing exploration.
//
// A user planning a high-rate capture wants to know: which capture method,
// how many cores, what truncation, and what writeback thresholds? This
// example sweeps those knobs against the host model and prints the
// decision data — ending with the Appendix B latency wall.
//
// Build & run:  ./build/examples/capture_tuning
#include <iostream>
#include <tuple>

#include "capture/perf_model.hpp"
#include "pcap/pcap.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace patchwork;

int main() {
  std::cout << "=== Step 1: is tcpdump enough? ===\n";
  host::HostSpec host;
  std::cout << "tcpdump loss-free ceiling for 1500 B frames: "
            << util::fmt_double(
                   capture::tcpdump_lossless_ceiling_bps(host, 1500, 64) /
                       1e9,
                   2)
            << " Gbps — fine for slow links, hopeless for a 100G mirror.\n";

  std::cout << "\n=== Step 2: DPDK core count for a 100G mirror ===\n";
  util::TextTable cores_table({"Cores", "Loss @100G 1514B trunc200 (%)"});
  for (std::uint32_t cores : {3u, 4u, 5u, 6u, 8u}) {
    capture::DpdkRunParams p;
    p.offered_bps = 100e9;
    p.frame_size = 1514;
    p.truncation = 200;
    p.cores = cores;
    p.duration = util::kSecond;
    host::HostSpec spec;
    spec.page_cache.dirty_background_ratio = 0.60;
    spec.page_cache.dirty_ratio = 0.80;
    util::Rng rng(1);
    cores_table.add_row(
        {std::to_string(cores),
         util::fmt_double(
             capture::simulate_dpdk_writer(spec, p, rng).loss_fraction() *
                 100.0,
             2)});
  }
  cores_table.print(std::cout);
  std::cout << "-> 5 cores suffice at 200 B truncation (Table 1, row 1).\n";

  std::cout << "\n=== Step 3: truncation size ===\n";
  util::TextTable trunc_table({"Truncation (B)", "Cores for 100G",
                               "Storage GB per hour"});
  for (std::uint32_t trunc : {64u, 200u, 512u}) {
    std::uint32_t needed = 16;
    for (std::uint32_t c = 1; c <= 16; ++c) {
      if (host.dpdk_capacity_pps(c, trunc) >= 100e9 / (8.0 * 1514.0)) {
        needed = c;
        break;
      }
    }
    const double frames_per_hour = 100e9 / (8.0 * 1514.0) * 3600.0;
    const double gb_per_hour =
        frames_per_hour * (trunc + pcap::kRecordHeaderSize) / 1e9;
    trunc_table.add_row({std::to_string(trunc), std::to_string(needed),
                         util::fmt_double(gb_per_hour, 0)});
  }
  trunc_table.print(std::cout);
  std::cout << "-> 64 B needs fewer cores but loses application headers; "
               "200 B keeps full stacks.\n";

  std::cout << "\n=== Step 4: the page-cache wall (Appendix B) ===\n";
  util::TextTable wall({"Thresholds", "Summed >32us latency @21% usage"});
  for (const auto& [bg, dr, label] :
       {std::tuple{0.10, 0.20, "10:20"}, std::tuple{0.20, 0.50, "20:50"},
        std::tuple{0.60, 0.80, "60:80"}}) {
    host::HostSpec spec;
    spec.page_cache.dirty_background_ratio = bg;
    spec.page_cache.dirty_ratio = dr;
    spec.page_cache.free_cache_bytes = 4ull << 30;
    spec.page_cache.storage_write_bytes_per_sec = 150e6;
    capture::DpdkRunParams p;
    p.offered_bps = 100e9;
    p.frame_size = 1514;
    p.truncation = 200;
    p.cores = 8;
    p.track_usage_curve = true;
    p.duration = util::from_seconds(
        0.25 * static_cast<double>(spec.page_cache.free_cache_bytes) /
        (100e9 / 8.0 / 1514.0 * 216.0));
    util::Rng rng(7);
    const auto stats = capture::simulate_dpdk_writer(spec, p, rng);
    double at21 = 0.0;
    for (const auto& pt : stats.usage_curve) {
      if (pt.usage_fraction <= 0.21) at21 = pt.summed_high_latency_ms;
    }
    wall.add_row({label, util::fmt_double(at21, 1) + " ms"});
  }
  wall.print(std::cout);
  std::cout << "-> Tune vm.dirty_* thresholds before long captures: the "
               "writer stalls at the\n   *midpoint* of the two thresholds, "
               "well before dirty_ratio (Appendix B).\n";
  return 0;
}
