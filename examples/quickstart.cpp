// Quickstart: the smallest end-to-end Patchwork run.
//
//   1. Build a simulated FABRIC-like federation.
//   2. Run Patchwork in all-experiment mode on one site.
//   3. Feed the gathered pcaps through the offline analysis pipeline.
//   4. Print the headline statistics.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "analysis/pipeline.hpp"
#include "core/coordinator.hpp"
#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"

using namespace patchwork;

int main() {
  // --- 1. The testbed substrate -----------------------------------------
  util::Rng rng(42);
  testbed::Federation fed = testbed::make_fabric_like_federation(rng);
  testbed::ActivityModel activity;
  telemetry::MfLib mflib(fed);
  traffic::TrafficEngine traffic(
      fed, activity, traffic::make_site_profiles(rng, fed.site_count()),
      rng.fork());
  sim::Clock clock;
  core::Environment env(clock, fed, mflib, traffic, rng);
  env.advance(11 * util::kMinute);  // Two SNMP polls so rates exist.

  // --- 2. Configure and run Patchwork ------------------------------------
  core::ProfilerConfig config;
  config.plan.cycles = 2;                 // Cycle mirrored ports twice.
  config.plan.samples_per_run = 3;        // Three 20 s samples per run.
  config.plan.max_frames_per_sample = 4000;  // Keep the demo snappy.
  config.capture.snaplen = 200;           // Keep headers, drop payloads.
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;

  core::Coordinator coordinator(env, config);
  const core::ProfileRun run =
      coordinator.run_on_sites({testbed::SiteId{0}});

  std::cout << "Gathered " << run.captures.size() << " samples ("
            << run.reports.front().pcap_bytes << " pcap bytes) from site "
            << run.reports.front().site_name << " — outcome: "
            << to_string(run.reports.front().outcome) << "\n";

  // --- 3. Offline analysis ------------------------------------------------
  const analysis::ProfileReport report = analysis::run_pipeline(run.captures);

  // --- 4. Headline numbers ------------------------------------------------
  std::cout << "Frames digested:   " << report.digest_stats.frames << "\n"
            << "Distinct flows:    " << report.distinct_flows << "\n"
            << "Jumbo frames:      "
            << report.frame_sizes.jumbo_fraction() * 100.0 << "%\n"
            << "IPv4 occurrence:   "
            << report.header_occurrence.percent(net::Protocol::kIpv4)
            << "%\n"
            << "IPv6 occurrence:   "
            << report.header_occurrence.percent(net::Protocol::kIpv6)
            << "%\n"
            << "TCP RST frames:    " << report.tcp_control.rst << "\n";
  std::cout << "\nCSV reports produced by the Process step:\n";
  for (const auto& [name, csv] : report.csv_files) {
    std::cout << "  " << name << " (" << csv.size() << " bytes)\n";
  }
  return 0;
}
