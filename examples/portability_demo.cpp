// Portability demo — the Section 9 future-work abstraction layer in use.
//
// The same capture workflow (discover -> lease a capture node -> mirror the
// busiest port -> sample -> analyze -> release) runs unchanged against two
// different testbeds behind the TestbedBackend interface: a FABRIC-like
// federation site and an Emulab-like cluster. The printed profiles expose
// each testbed's character: FABRIC shows FPGA offload and a deep
// MPLS/pseudowire underlay; Emulab shows VLAN-only isolation and fewer
// capture NICs.
//
// Build & run:  ./build/examples/portability_demo
#include <iostream>

#include "analysis/analyses.hpp"
#include "analysis/digest.hpp"
#include "core/testbed_backend.hpp"
#include "pcap/pcap.hpp"
#include "util/table.hpp"

using namespace patchwork;

namespace {

void profile_with(core::TestbedBackend& backend) {
  std::cout << "=== Testbed: " << backend.name() << " ===\n"
            << "capture NICs available: "
            << backend.available_capture_nics()
            << ", on-NIC offload: "
            << (backend.supports_offload() ? "yes (FPGA)" : "no") << "\n";

  // Lease one capture node.
  auto result = backend.acquire_capture_node();
  if (std::holds_alternative<testbed::AllocError>(result)) {
    std::cout << "allocation failed: "
              << testbed::to_string(std::get<testbed::AllocError>(result))
              << "\n";
    return;
  }
  const auto lease = std::get<core::TestbedBackend::CaptureLease>(result);

  // Mirror the busiest port that is not one of our own NIC ports.
  const auto rates = backend.port_rates(15 * util::kMinute);
  testbed::PortId source = rates.front().port.port;
  for (const auto& r : rates) {
    if (std::find(lease.destinations.begin(), lease.destinations.end(),
                  r.port.port) == lease.destinations.end()) {
      source = r.port.port;
      break;
    }
  }
  backend.mirror(source, lease.destinations.front());

  // Three 20-second samples, then analysis.
  std::vector<analysis::RawCapture> captures;
  for (int s = 0; s < 3; ++s) {
    const auto window = backend.sample(source, 20 * util::kSecond, 2500);
    pcap::PcapWriter writer(200);
    for (const net::Frame& f : window.frames) writer.write(f);
    analysis::RawCapture raw;
    raw.site = backend.name();
    raw.port = source.value;
    raw.start = backend.now();
    raw.duration = 20 * util::kSecond;
    raw.pcap = writer.take_buffer();
    captures.push_back(std::move(raw));
    backend.advance(5 * util::kMinute);
  }
  backend.unmirror(source);
  backend.release(lease);

  const auto files = analysis::digest_all(captures);
  const auto occurrence = analysis::analyze_header_occurrence(files);
  const auto stacks = analysis::analyze_top_stacks(files, 3);

  util::TextTable table({"Header", "% of frames"});
  for (net::Protocol p :
       {net::Protocol::kVlan, net::Protocol::kMpls, net::Protocol::kPseudoWire,
        net::Protocol::kIpv4, net::Protocol::kTcp}) {
    table.add_row({std::string(net::to_string(p)),
                   util::fmt_double(occurrence.percent(p), 1)});
  }
  table.print(std::cout);
  std::cout << "Top stacks:\n";
  for (const auto& s : stacks) {
    std::cout << "  " << s.stack << "  ("
              << util::fmt_percent(s.fraction, 1) << ")\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  auto fabric = core::make_fabric_like_backend(11);
  auto emulab = core::make_emulab_like_backend(11);
  profile_with(*fabric);
  profile_with(*emulab);
  std::cout << "Same workflow, two testbeds: the MPLS/pseudowire underlay "
               "is a FABRIC trait;\nthe Emulab-style site isolates with "
               "VLANs only and offers no NIC offload.\n";
  return 0;
}
