// patchwork_cli — drive a full profiling run from the command line.
//
// The closest thing in this repository to the tool FABRIC users invoke:
// every knob of requirement R5 (Tunable Fidelity) is a flag, and the
// Process step's CSV reports are written to disk.
//
//   patchwork_cli [options]
//     --seed N            RNG seed for the simulated federation (default 1)
//     --sites N           number of sites to profile (default: all)
//     --cycles N          port-cycling rounds per site (default 3)
//     --samples N         samples per run (default 2)
//     --duration SECS     sample duration (default 20)
//     --method M          tcpdump | dpdk | fpga (default fpga)
//     --snaplen N         truncation bytes (default 200)
//     --filter EXPR       capture filter, e.g. "ip and tcp and not port 22"
//     --policy P          busiest | uplinks | all (default busiest)
//     --anonymize         scrub addresses at capture time
//     --nice X            enable dynamic scaling with this nice factor
//     --out DIR           write CSV reports to DIR (default ".")
//
// Example:
//   ./build/examples/patchwork_cli --sites 5 --filter "ip and tcp"
//       --anonymize --out /tmp/profile
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/pipeline.hpp"
#include "util/thread_pool.hpp"
#include "core/coordinator.hpp"
#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"

using namespace patchwork;

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "patchwork_cli: " << message
            << "\nRun with --help for usage.\n";
  std::exit(2);
}

struct Options {
  std::uint64_t seed = 1;
  std::size_t sites = 0;  // 0 = all production sites.
  core::ProfilerConfig config;
  std::string out_dir = ".";
};

Options parse_args(int argc, char** argv) {
  Options options;
  options.config.plan.cycles = 3;
  options.config.plan.samples_per_run = 2;
  options.config.plan.max_frames_per_sample = 2000;
  options.config.crash_probability = 0.0;
  options.config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  options.config.capture.cores = 5;
  options.config.capture.snaplen = 200;

  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::cout << "See the comment at the top of examples/patchwork_cli.cpp "
                   "for full usage.\n";
      std::exit(0);
    } else if (arg == "--seed") {
      options.seed = std::stoull(next_value(i));
    } else if (arg == "--sites") {
      options.sites = std::stoul(next_value(i));
    } else if (arg == "--cycles") {
      options.config.plan.cycles =
          static_cast<std::uint32_t>(std::stoul(next_value(i)));
    } else if (arg == "--samples") {
      options.config.plan.samples_per_run =
          static_cast<std::uint32_t>(std::stoul(next_value(i)));
    } else if (arg == "--duration") {
      options.config.plan.sample_duration =
          util::from_seconds(std::stod(next_value(i)));
    } else if (arg == "--method") {
      const std::string m = next_value(i);
      if (m == "tcpdump") {
        options.config.capture.method = capture::CaptureMethod::kTcpdump;
      } else if (m == "dpdk") {
        options.config.capture.method = capture::CaptureMethod::kDpdk;
      } else if (m == "fpga") {
        options.config.capture.method = capture::CaptureMethod::kFpgaDpdk;
      } else {
        usage_error("unknown method '" + m + "'");
      }
    } else if (arg == "--snaplen") {
      options.config.capture.snaplen =
          static_cast<std::uint32_t>(std::stoul(next_value(i)));
    } else if (arg == "--filter") {
      auto compiled = capture::Filter::compile(next_value(i));
      if (auto* err = std::get_if<capture::Filter::CompileError>(&compiled)) {
        usage_error("bad filter: " + err->message);
      }
      options.config.capture.filter = std::get<capture::Filter>(compiled);
    } else if (arg == "--policy") {
      const std::string p = next_value(i);
      if (p == "busiest") {
        options.config.plan.policy = core::PortPolicy::kBusiestBias;
      } else if (p == "uplinks") {
        options.config.plan.policy = core::PortPolicy::kUplinksOnly;
      } else if (p == "all") {
        options.config.plan.policy = core::PortPolicy::kRoundRobinAll;
      } else {
        usage_error("unknown policy '" + p + "'");
      }
    } else if (arg == "--anonymize") {
      options.config.capture.anonymize = true;
    } else if (arg == "--nice") {
      options.config.dynamic_scaling = true;
      options.config.scaling.nice = std::stod(next_value(i));
    } else if (arg == "--out") {
      options.out_dir = next_value(i);
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);

  // Simulated FABRIC world.
  util::Rng rng(options.seed);
  testbed::Federation fed = testbed::make_fabric_like_federation(rng);
  testbed::ActivityModel activity;
  telemetry::MfLib mflib(fed);
  traffic::TrafficEngine traffic(
      fed, activity, traffic::make_site_profiles(rng, fed.site_count()),
      rng.fork());
  sim::Clock clock;
  core::Environment env(clock, fed, mflib, traffic, rng);
  env.advance(11 * util::kMinute);

  core::Coordinator coordinator(env, options.config);
  core::ProfileRun run;
  if (options.sites == 0) {
    run = coordinator.run_all_experiment();
  } else {
    std::vector<testbed::SiteId> sites;
    for (std::uint32_t s = 0;
         s < options.sites && s < fed.site_count(); ++s) {
      if (!fed.site(testbed::SiteId{s}).teaching_only()) {
        sites.push_back(testbed::SiteId{s});
      }
    }
    run = coordinator.run_on_sites(sites);
  }

  std::cout << "profiled " << run.reports.size() << " site(s): "
            << run.outcome_count(core::RunOutcome::kSuccess) << " success, "
            << run.outcome_count(core::RunOutcome::kDegraded)
            << " degraded, "
            << run.outcome_count(core::RunOutcome::kFailed) << " failed\n"
            << "gathered " << run.captures.size() << " samples\n";

  std::cout << "offline pipeline workers: " << util::thread_count()
            << " (set PATCHWORK_THREADS, 0 = serial)\n";
  const analysis::ProfileReport report = analysis::run_pipeline(run.captures);
  std::cout << "digested " << report.digest_stats.frames << " frames, "
            << report.distinct_flows << " distinct flows\n";

  std::filesystem::create_directories(options.out_dir);
  for (const auto& [name, csv] : report.csv_files) {
    const std::filesystem::path path =
        std::filesystem::path(options.out_dir) / name;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << csv;
    std::cout << "wrote " << path.string() << " (" << csv.size()
              << " bytes)\n";
  }
  return 0;
}
