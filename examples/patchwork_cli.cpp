// patchwork_cli — drive a full profiling run from the command line.
//
// The closest thing in this repository to the tool FABRIC users invoke:
// every knob of requirement R5 (Tunable Fidelity) is a flag, and the
// Process step's CSV reports are written to disk. Every run also writes
// patchwork_manifest.json (seed, config, build identity, metric values)
// and patchwork_metrics.prom (Prometheus exposition) next to the CSVs.
//
//   patchwork_cli [options]
//     --seed N            RNG seed for the simulated federation (default 1)
//     --sites N           number of sites to profile (default: all)
//     --cycles N          port-cycling rounds per site (default 3)
//     --samples N         samples per run (default 2)
//     --duration SECS     sample duration (default 20)
//     --method M          tcpdump | dpdk | fpga (default fpga)
//     --simd T            avx2 | sse4 | scalar draw-kernel tier (default:
//                         widest supported; output bytes identical on all)
//     --flow-model M      mix | event window planner (default mix; event =
//                         flow arrivals/durations/churn, src/flowsched)
//     --arrival P         exp | uniform interarrival process (event model)
//     --duration-model P  pareto | uniform flow durations (event model)
//     --flow-rate X       flow arrivals per second (default 40)
//     --flow-duration S   mean flow lifetime seconds (default 5)
//     --zipf-param S      flow-popularity Zipf exponent (default 1.26)
//     --flow-keys N       bounded flow-key pool size (default 512)
//     --max-active-flows N  concurrent-flow pool bound (default 4096)
//     --churn-fpm X       flow-key churn, replacements per minute
//     --snaplen N         truncation bytes (default 200)
//     --filter EXPR       capture filter, e.g. "ip and tcp and not port 22"
//     --policy P          busiest | uplinks | all (default busiest)
//     --anonymize         scrub addresses at capture time
//     --nice X            enable dynamic scaling with this nice factor
//     --out DIR           write CSV reports to DIR (default ".")
//     --scrape-port N     serve GET /metrics, /metrics?deterministic=1,
//                         /healthz, /manifest.json live on 127.0.0.1:N
//                         (0 = ephemeral; PATCHWORK_SCRAPE=port is the
//                         env equivalent, the flag wins)
//
// PATCHWORK_TRACE=path[:capacity] arms the flight recorder: every stage
// span (and per-burst render_unit scope) lands on a per-worker timeline,
// written to `path` as Chrome trace-event JSON at exit (open in Perfetto).
//
// Longitudinal archive subcommands (see src/archive):
//   patchwork_cli archive append --archive F [--label L] [run options]
//       profile once and append the epoch record to archive F
//   patchwork_cli archive compact --archive F --budget BYTES [--group N]
//       [--full] merge the oldest records into rollups until the live image
//       fits BYTES; commits are incremental appends unless --full
//   patchwork_cli archive gc --archive F
//       rewrite F shedding superseded blocks, orphans, and damage
//   patchwork_cli archive merge --archive OUT --input F[=ORIGIN] ...
//       federate several archives into OUT; each input's records are
//       stamped with its deployment origin (default: the file stem)
//   patchwork_cli archive query --archive F [--site NAME] [--top K]
//       [--from-epoch N] [--to-epoch N] [--from-nanos N] [--to-nanos N]
//       print the jumbo/IPv6/TCP trend table, per-site loads, top flows
//       (windowed to the given inclusive epoch/time ranges)
//   patchwork_cli archive stat --archive F
//       record/epoch counts, span, damage and garbage counters
//
// Example:
//   ./build/examples/patchwork_cli --sites 5 --filter "ip and tcp"
//       --anonymize --out /tmp/profile
//   ./build/examples/patchwork_cli archive append --archive prof.pwar \
//       --label week1 --sites 5
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>

#include "analysis/epoch_extract.hpp"
#include "analysis/pipeline.hpp"
#include "archive/compactor.hpp"
#include "archive/federation.hpp"
#include "archive/query.hpp"
#include "archive/query_cache.hpp"
#include "archive/writer.hpp"
#include "flowsched/event_gen.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape_server.hpp"
#include "obs/trace.hpp"
#include "util/philox_simd.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "core/coordinator.hpp"
#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"

using namespace patchwork;

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "patchwork_cli: " << message
            << "\nRun with --help for usage.\n";
  std::exit(2);
}

struct Options {
  std::uint64_t seed = 1;
  std::size_t sites = 0;  // 0 = all production sites.
  core::ProfilerConfig config;
  std::string out_dir = ".";
  std::string archive_cmd;  // "" = plain profile run.
  std::string archive_path;
  std::string label;
  std::string site_filter;
  std::uint64_t budget_bytes = 256 * 1024;
  std::size_t group_size = 4;
  std::size_t top_k = 10;
  bool full_rewrite = false;  // --full: compact by whole-file rewrite.
  std::vector<archive::FederationInput> merge_inputs;
  archive::QueryWindow window;
  int scrape_port = -1;  // -1 = not requested (PATCHWORK_SCRAPE may still).
};

Options parse_args(int argc, char** argv) {
  Options options;
  options.config.plan.cycles = 3;
  options.config.plan.samples_per_run = 2;
  options.config.plan.max_frames_per_sample = 2000;
  options.config.crash_probability = 0.0;
  options.config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  options.config.capture.cores = 5;
  options.config.capture.snaplen = 200;

  int first = 1;
  if (argc >= 2 && std::string(argv[1]) == "archive") {
    if (argc < 3) usage_error("archive needs a subcommand");
    options.archive_cmd = argv[2];
    if (options.archive_cmd != "append" && options.archive_cmd != "compact" &&
        options.archive_cmd != "query" && options.archive_cmd != "stat" &&
        options.archive_cmd != "merge" && options.archive_cmd != "gc") {
      usage_error("unknown archive subcommand '" + options.archive_cmd + "'");
    }
    first = 3;
  }

  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::cout << "See the comment at the top of examples/patchwork_cli.cpp "
                   "for full usage.\n";
      std::exit(0);
    } else if (arg == "--seed") {
      options.seed = std::stoull(next_value(i));
    } else if (arg == "--sites") {
      options.sites = std::stoul(next_value(i));
    } else if (arg == "--cycles") {
      options.config.plan.cycles =
          static_cast<std::uint32_t>(std::stoul(next_value(i)));
    } else if (arg == "--samples") {
      options.config.plan.samples_per_run =
          static_cast<std::uint32_t>(std::stoul(next_value(i)));
    } else if (arg == "--duration") {
      options.config.plan.sample_duration =
          util::from_seconds(std::stod(next_value(i)));
    } else if (arg == "--method") {
      const std::string m = next_value(i);
      if (m == "tcpdump") {
        options.config.capture.method = capture::CaptureMethod::kTcpdump;
      } else if (m == "dpdk") {
        options.config.capture.method = capture::CaptureMethod::kDpdk;
      } else if (m == "fpga") {
        options.config.capture.method = capture::CaptureMethod::kFpgaDpdk;
      } else {
        usage_error("unknown method '" + m + "'");
      }
    } else if (arg == "--flow-model") {
      const std::string m = next_value(i);
      const auto model = flowsched::parse_flow_model(m);
      if (!model) usage_error("unknown --flow-model '" + m + "'");
      options.config.flow_model.model = *model;
    } else if (arg == "--arrival") {
      const std::string a = next_value(i);
      const auto arrival = flowsched::parse_arrival(a);
      if (!arrival) usage_error("unknown --arrival '" + a + "'");
      options.config.flow_model.arrival = *arrival;
    } else if (arg == "--duration-model") {
      const std::string d = next_value(i);
      const auto duration = flowsched::parse_duration(d);
      if (!duration) usage_error("unknown --duration-model '" + d + "'");
      options.config.flow_model.duration = *duration;
    } else if (arg == "--flow-rate") {
      options.config.flow_model.flows_per_second = std::stod(next_value(i));
    } else if (arg == "--flow-duration") {
      options.config.flow_model.mean_flow_duration_s =
          std::stod(next_value(i));
    } else if (arg == "--zipf-param") {
      options.config.flow_model.zipf_param = std::stod(next_value(i));
    } else if (arg == "--flow-keys") {
      options.config.flow_model.flow_keys = std::stoul(next_value(i));
    } else if (arg == "--max-active-flows") {
      options.config.flow_model.max_active_flows = std::stoul(next_value(i));
    } else if (arg == "--churn-fpm") {
      options.config.flow_model.churn_fpm = std::stod(next_value(i));
    } else if (arg == "--simd") {
      const std::string t = next_value(i);
      if (!util::parse_simd_tier(t).has_value()) {
        usage_error("unknown --simd tier: " + t +
                    " (expected avx2 | sse4 | scalar)");
      }
      options.config.simd_tier = t;
    } else if (arg == "--snaplen") {
      options.config.capture.snaplen =
          static_cast<std::uint32_t>(std::stoul(next_value(i)));
    } else if (arg == "--filter") {
      auto compiled = capture::Filter::compile(next_value(i));
      if (auto* err = std::get_if<capture::Filter::CompileError>(&compiled)) {
        usage_error("bad filter: " + err->message);
      }
      options.config.capture.filter = std::get<capture::Filter>(compiled);
    } else if (arg == "--policy") {
      const std::string p = next_value(i);
      if (p == "busiest") {
        options.config.plan.policy = core::PortPolicy::kBusiestBias;
      } else if (p == "uplinks") {
        options.config.plan.policy = core::PortPolicy::kUplinksOnly;
      } else if (p == "all") {
        options.config.plan.policy = core::PortPolicy::kRoundRobinAll;
      } else {
        usage_error("unknown policy '" + p + "'");
      }
    } else if (arg == "--anonymize") {
      options.config.capture.anonymize = true;
    } else if (arg == "--nice") {
      options.config.dynamic_scaling = true;
      options.config.scaling.nice = std::stod(next_value(i));
    } else if (arg == "--out") {
      options.out_dir = next_value(i);
    } else if (arg == "--archive") {
      options.archive_path = next_value(i);
    } else if (arg == "--label") {
      options.label = next_value(i);
    } else if (arg == "--site") {
      options.site_filter = next_value(i);
    } else if (arg == "--budget") {
      options.budget_bytes = std::stoull(next_value(i));
    } else if (arg == "--group") {
      options.group_size = std::stoul(next_value(i));
    } else if (arg == "--top") {
      options.top_k = std::stoul(next_value(i));
    } else if (arg == "--full") {
      options.full_rewrite = true;
    } else if (arg == "--input") {
      // PATH or PATH=ORIGIN; without an origin the file stem tags the
      // records (prof_a.pwar -> "prof_a").
      const std::string value = next_value(i);
      archive::FederationInput input;
      const std::size_t eq = value.rfind('=');
      if (eq != std::string::npos && eq + 1 < value.size()) {
        input.path = value.substr(0, eq);
        input.origin = value.substr(eq + 1);
      } else {
        input.path = value;
        input.origin = std::filesystem::path(value).stem().string();
      }
      options.merge_inputs.push_back(std::move(input));
    } else if (arg == "--from-epoch") {
      options.window.from_epoch = std::stoull(next_value(i));
    } else if (arg == "--to-epoch") {
      options.window.to_epoch = std::stoull(next_value(i));
    } else if (arg == "--from-nanos") {
      options.window.from_nanos = std::stoull(next_value(i));
    } else if (arg == "--to-nanos") {
      options.window.to_nanos = std::stoull(next_value(i));
    } else if (arg == "--scrape-port") {
      const unsigned long port = std::stoul(next_value(i));
      if (port > 65535) usage_error("--scrape-port out of range");
      options.scrape_port = static_cast<int>(port);
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  if (!options.archive_cmd.empty() && options.archive_path.empty()) {
    usage_error("archive " + options.archive_cmd + " needs --archive FILE");
  }
  if (options.archive_cmd == "merge" && options.merge_inputs.empty()) {
    usage_error("archive merge needs at least one --input FILE[=ORIGIN]");
  }
  return options;
}

/// One stderr line per kind of damage the open found; the query still runs
/// over whatever decoded (the archive is self-resynchronizing), but the
/// caller deserves to know the answer may be missing mass.
void warn_damage(const std::string& path, const archive::OpenStatus& status) {
  if (status.corrupt_blocks > 0) {
    std::cerr << "warning: " << path << ": skipped " << status.corrupt_blocks
              << " corrupt block(s); results may be incomplete\n";
  }
  if (status.damaged_tail) {
    std::cerr << "warning: " << path << ": damaged tail after "
              << status.valid_bytes
              << " valid bytes (crash or truncation); trailing records were "
                 "dropped\n";
  }
  if (status.skipped_newer > 0) {
    std::cerr << "warning: " << path << ": skipped " << status.skipped_newer
              << " block(s) written by a newer build\n";
  }
}

int archive_compact(const Options& options) {
  archive::CompactionOptions compaction;
  compaction.storage_budget_bytes = options.budget_bytes;
  compaction.group_size = options.group_size;
  compaction.incremental = !options.full_rewrite;
  const archive::CompactionResult result =
      archive::compact_archive(options.archive_path, compaction);
  if (!result.ok()) {
    std::cerr << "compact failed: " << archive::to_string(result.error)
              << "\n";
    return 1;
  }
  std::cout << options.archive_path << ": " << result.bytes_before << " -> "
            << result.bytes_after << " bytes, " << result.records_before
            << " -> " << result.records_after << " records ("
            << result.passes << " pass(es)";
  if (!result.changed) {
    std::cout << ", no change needed)";
  } else if (result.gc) {
    std::cout << ", full rewrite)";
  } else {
    std::cout << ", " << result.rollups_committed << " rollup(s) in a "
              << result.bytes_appended << "-byte incremental commit)";
  }
  std::cout << "\n";
  return 0;
}

int archive_gc(const Options& options) {
  const archive::CompactionResult result =
      archive::gc_archive(options.archive_path);
  if (!result.ok()) {
    std::cerr << "gc failed: " << archive::to_string(result.error) << "\n";
    return 1;
  }
  if (!result.changed) {
    std::cout << options.archive_path << ": already clean ("
              << result.bytes_before << " bytes)\n";
  } else {
    std::cout << options.archive_path << ": " << result.bytes_before << " -> "
              << result.bytes_after << " bytes (" << result.records_after
              << " records kept)\n";
  }
  return 0;
}

int archive_merge(const Options& options) {
  const archive::FederationResult result =
      archive::merge_archives(options.merge_inputs, options.archive_path);
  if (!result.ok()) {
    std::cerr << "merge failed: " << archive::to_string(result.error)
              << " (" << result.failed_path << ")\n";
    return 1;
  }
  std::cout << "merged " << result.archives_read << " archive(s), "
            << result.records_out << " record(s) -> " << options.archive_path
            << " (" << result.bytes_written << " bytes)\n";
  if (result.corrupt_blocks > 0 || result.damaged_tails > 0) {
    std::cerr << "warning: inputs carried damage (" << result.corrupt_blocks
              << " corrupt block(s), " << result.damaged_tails
              << " damaged tail(s)); those records were skipped\n";
  }
  return 0;
}

int archive_query(const Options& options) {
  archive::OpenStatus status;
  const std::shared_ptr<const archive::ArchiveQuery> cached =
      archive::QueryCache::instance().get(options.archive_path,
                                          options.window, &status);
  if (!status.ok()) {
    std::cerr << "query failed: " << archive::to_string(status.error) << "\n";
    return 1;
  }
  warn_damage(options.archive_path, status);
  const archive::ArchiveQuery& query = *cached;
  if (query.record_count() == 0) {
    std::cout << (options.window.everything()
                      ? "archive is empty\n"
                      : "no records in the requested window\n");
    return 0;
  }

  const auto jumbo = query.jumbo_share();
  const auto ipv6 = query.ipv6_share();
  const auto tcp = query.tcp_share();
  const auto offered = query.offered_bps();
  const auto flows = query.flow_snippets();
  util::TextTable trend({"Record", "Epochs", "Avg Gbps", "Jumbo share",
                         "IPv6 share", "TCP %", "Flow snippets"});
  for (std::size_t i = 0; i < jumbo.size(); ++i) {
    trend.add_row({jumbo[i].label, std::to_string(jumbo[i].epoch_count),
                   util::fmt_double(offered[i].value / 1e9, 2),
                   util::fmt_percent(jumbo[i].value, 1),
                   util::fmt_double(ipv6[i].value * 100.0, 2),
                   util::fmt_double(tcp[i].value * 100.0, 1),
                   std::to_string(
                       static_cast<std::uint64_t>(flows[i].value))});
  }
  trend.print(std::cout);

  if (!options.site_filter.empty()) {
    const auto wire = query.site_wire_bytes(options.site_filter);
    const auto drops = query.site_switch_drops(options.site_filter);
    util::TextTable site({"Record", "Wire bytes", "Suspected switch drops"});
    for (std::size_t i = 0; i < wire.size(); ++i) {
      site.add_row({wire[i].label,
                    std::to_string(
                        static_cast<std::uint64_t>(wire[i].value)),
                    std::to_string(
                        static_cast<std::uint64_t>(drops[i].value))});
    }
    std::cout << "\nSite " << options.site_filter << ":\n";
    site.print(std::cout);
  }

  std::cout << "\nTop flows (true bytes in [count-error, count]):\n";
  for (const auto& entry : query.top_flows(options.top_k)) {
    std::cout << "  " << entry.key << "  <= " << entry.count
              << " bytes (overcount <= " << entry.error << ")\n";
  }
  return 0;
}

int archive_stat(const Options& options) {
  archive::ArchiveReader reader;
  const archive::OpenError error = reader.open(options.archive_path);
  if (error != archive::OpenError::kNone) {
    std::cerr << "stat failed: " << archive::to_string(error) << "\n";
    return 1;
  }
  std::uint64_t epochs = 0, rollups = 0;
  std::set<std::string> origins;
  for (const auto& record : reader.records()) {
    epochs += record.epoch_count;
    rollups += record.is_rollup() ? 1 : 0;
    if (!record.origin.empty()) origins.insert(record.origin);
  }
  std::cout << options.archive_path << ":\n"
            << "  records:        " << reader.records().size() << " ("
            << rollups << " rollup(s))\n"
            << "  epochs covered: " << epochs << "\n"
            << "  file bytes:     " << reader.valid_bytes() << "\n"
            << "  live bytes:     " << reader.live_bytes() << "\n"
            << "  garbage bytes:  " << reader.garbage_bytes() << " ("
            << reader.superseded_records() << " superseded, "
            << reader.orphan_pending() << " orphan pending)\n"
            << "  corrupt blocks: " << reader.corrupt_blocks() << "\n"
            << "  damaged tail:   " << (reader.damaged_tail() ? "yes" : "no")
            << "\n";
  if (!origins.empty()) {
    std::cout << "  origins:       ";
    for (const auto& origin : origins) std::cout << " " << origin;
    std::cout << "\n";
  }
  archive::OpenStatus status;
  status.corrupt_blocks = reader.corrupt_blocks();
  status.damaged_tail = reader.damaged_tail();
  status.valid_bytes = reader.valid_bytes();
  status.skipped_newer = reader.skipped_newer_blocks();
  warn_damage(options.archive_path, status);
  if (!reader.records().empty()) {
    const auto& first = reader.records().front();
    const auto& last = reader.records().back();
    std::cout << "  span:           " << first.label << " .. " << last.label
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  if (options.archive_cmd == "compact") return archive_compact(options);
  if (options.archive_cmd == "gc") return archive_gc(options);
  if (options.archive_cmd == "merge") return archive_merge(options);
  if (options.archive_cmd == "query") return archive_query(options);
  if (options.archive_cmd == "stat") return archive_stat(options);

  // Manifest identity is a pure function of the parsed options, so build
  // it up front: the live /manifest.json route can then serve it mid-run.
  obs::ManifestInfo info;
  info.seed = options.seed;
  info.config = {
      {"sites", std::to_string(options.sites)},
      {"cycles", std::to_string(options.config.plan.cycles)},
      {"samples_per_run",
       std::to_string(options.config.plan.samples_per_run)},
      {"snaplen", std::to_string(options.config.capture.snaplen)},
      {"flow_model",
       std::string(flowsched::to_string(options.config.flow_model.model))},
      {"arrival",
       std::string(flowsched::to_string(options.config.flow_model.arrival))},
      {"duration_model",
       std::string(flowsched::to_string(options.config.flow_model.duration))},
      {"flow_rate",
       std::to_string(options.config.flow_model.flows_per_second)},
      {"flow_duration_s",
       std::to_string(options.config.flow_model.mean_flow_duration_s)},
      {"zipf_param", std::to_string(options.config.flow_model.zipf_param)},
      {"flow_keys", std::to_string(options.config.flow_model.flow_keys)},
      {"max_active_flows",
       std::to_string(options.config.flow_model.max_active_flows)},
      {"churn_fpm", std::to_string(options.config.flow_model.churn_fpm)},
  };

  // Live observability: the --scrape-port flag wins over PATCHWORK_SCRAPE;
  // both coexist with the end-of-run file exports below.
  const auto manifest_provider = [info] { return obs::render_manifest(info); };
  std::unique_ptr<obs::ScrapeServer> scrape;
  if (options.scrape_port >= 0) {
    obs::ScrapeServerOptions scrape_options;
    scrape_options.port = static_cast<std::uint16_t>(options.scrape_port);
    scrape_options.manifest = manifest_provider;
    scrape = std::make_unique<obs::ScrapeServer>(std::move(scrape_options));
    if (!scrape->ok()) {
      std::cerr << "cannot bind scrape port "
                << options.scrape_port << "\n";
      return 1;
    }
  } else {
    scrape = obs::maybe_start_scrape_server_from_env(manifest_provider);
  }
  if (scrape) {
    std::cout << "scrape endpoint: http://127.0.0.1:" << scrape->port()
              << "/metrics\n";
  }
  obs::trace::configure_from_env();

  // Simulated FABRIC world.
  util::Rng rng(options.seed);
  testbed::Federation fed = testbed::make_fabric_like_federation(rng);
  testbed::ActivityModel activity;
  telemetry::MfLib mflib(fed);
  traffic::TrafficEngine traffic(
      fed, activity, traffic::make_site_profiles(rng, fed.site_count()),
      rng.fork());
  sim::Clock clock;
  core::Environment env(clock, fed, mflib, traffic, rng);
  env.advance(11 * util::kMinute);

  const util::Nanos run_start = env.clock().now();
  core::Coordinator coordinator(env, options.config);
  core::ProfileRun run;
  if (options.sites == 0) {
    run = coordinator.run_all_experiment();
  } else {
    std::vector<testbed::SiteId> sites;
    for (std::uint32_t s = 0;
         s < options.sites && s < fed.site_count(); ++s) {
      if (!fed.site(testbed::SiteId{s}).teaching_only()) {
        sites.push_back(testbed::SiteId{s});
      }
    }
    run = coordinator.run_on_sites(sites);
  }

  std::cout << "profiled " << run.reports.size() << " site(s): "
            << run.outcome_count(core::RunOutcome::kSuccess) << " success, "
            << run.outcome_count(core::RunOutcome::kDegraded)
            << " degraded, "
            << run.outcome_count(core::RunOutcome::kFailed) << " failed\n"
            << "gathered " << run.captures.size() << " samples\n";

  std::cout << "offline pipeline workers: " << util::thread_count()
            << " (set PATCHWORK_THREADS, 0 = serial)\n";
  const analysis::ProfileReport report = analysis::run_pipeline(run.captures);
  std::cout << "digested " << report.digest_stats.frames << " frames, "
            << report.distinct_flows << " distinct flows\n";

  std::filesystem::create_directories(options.out_dir);
  for (const auto& [name, csv] : report.csv_files) {
    const std::filesystem::path path =
        std::filesystem::path(options.out_dir) / name;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << csv;
    std::cout << "wrote " << path.string() << " (" << csv.size()
              << " bytes)\n";
  }

  // Every run leaves its identity next to the outputs: the manifest ties
  // the CSVs to seed/config/build, the exposition snapshots final metrics.
  const std::string manifest_path =
      (std::filesystem::path(options.out_dir) / "patchwork_manifest.json")
          .string();
  const std::string metrics_path =
      (std::filesystem::path(options.out_dir) / "patchwork_metrics.prom")
          .string();
  if (!obs::write_manifest(manifest_path, info) ||
      !obs::expose_to_file(metrics_path)) {
    std::cerr << "cannot write run manifest/metrics\n";
    return 1;
  }
  std::cout << "wrote " << manifest_path << "\nwrote " << metrics_path
            << "\n";

  if (obs::trace::write_env_configured()) {
    std::cout << "wrote " << obs::trace::env_configured_path()
              << " (Chrome trace-event JSON; open in Perfetto)\n";
  }

  if (options.archive_cmd == "append") {
    archive::ArchiveWriter writer;
    const archive::OpenError error = writer.open(options.archive_path);
    if (error != archive::OpenError::kNone) {
      std::cerr << "archive open failed: " << archive::to_string(error)
                << "\n";
      return 1;
    }
    analysis::EpochMeta meta;
    meta.label = options.label.empty()
                     ? "epoch" + std::to_string(writer.next_epoch_index())
                     : options.label;
    meta.start = run_start;
    meta.duration = env.clock().now() - run_start;
    meta.offered_bps = env.mflib().testbed_total_tx_bps(30 * util::kMinute);
    // The epoch embeds the manifest's deterministic section (the full
    // manifest's wall_clock half would differ run to run).
    meta.manifest_json = obs::manifest_deterministic_section(info);
    if (!writer.append(analysis::extract_epoch_record(report, meta))) {
      std::cerr << "archive append failed\n";
      return 1;
    }
    std::cout << "appended " << meta.label << " to " << options.archive_path
              << " (next epoch index " << writer.next_epoch_index() << ")\n";
  }
  return 0;
}
