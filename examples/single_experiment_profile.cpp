// Single-experiment mode: the paper's Section 1 motivating scenario.
//
// A researcher evaluates a WAN congestion-control algorithm between two
// FABRIC sites (think Amsterdam <-> Tokyo). Their slice owns specific
// switch ports; Patchwork profiles *only those ports* and the researcher
// inspects TCP control behaviour (ACK cadence, RSTs, window sizes) from
// the header capture — without tcpdump bump-in-the-wire hacks.
//
// Build & run:  ./build/examples/single_experiment_profile
#include <iostream>

#include "analysis/pipeline.hpp"
#include "capture/filter.hpp"
#include "core/coordinator.hpp"
#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"
#include "util/table.hpp"

using namespace patchwork;

int main() {
  util::Rng rng(7);
  testbed::Federation fed = testbed::make_fabric_like_federation(rng);
  testbed::ActivityModel activity;
  telemetry::MfLib mflib(fed);
  traffic::TrafficEngine traffic(
      fed, activity, traffic::make_site_profiles(rng, fed.site_count()),
      rng.fork());
  sim::Clock clock;
  core::Environment env(clock, fed, mflib, traffic, rng);

  // The researcher's slice: VMs behind two downlink ports at site 2 and
  // one at site 7 (the transfer's other end). Make the experiment's ports
  // busy — it is running a long bulk transfer.
  const std::vector<testbed::GlobalPortId> slice_ports = {
      {testbed::SiteId{2}, testbed::PortId{5}},
      {testbed::SiteId{2}, testbed::PortId{6}},
      {testbed::SiteId{7}, testbed::PortId{4}},
  };
  for (const auto& port : slice_ports) {
    traffic.set_base_utilization(port, 3.0);  // Pin near line rate.
  }
  env.advance(11 * util::kMinute);

  core::ProfilerConfig config;
  config.plan.samples_per_run = 4;
  config.plan.cycles = 2;
  config.capture.snaplen = 200;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;
  // The researcher only cares about their TCP stream, not ARP chatter.
  config.capture.filter =
      std::get<capture::Filter>(capture::Filter::compile("ip and tcp"));

  core::Coordinator coordinator(env, config);
  const core::ProfileRun run = coordinator.run_single_experiment(slice_ports);

  std::cout << "Single-experiment profile over " << run.reports.size()
            << " sites, " << run.captures.size() << " samples\n";
  for (const auto& report : run.reports) {
    std::cout << "  " << report.site_name << ": "
              << to_string(report.outcome) << ", " << report.samples
              << " samples\n";
  }

  const analysis::ProfileReport report = analysis::run_pipeline(run.captures);

  util::TextTable table({"Metric", "Value"});
  table.add_row({"Frames captured",
                 std::to_string(report.digest_stats.frames)});
  table.add_row({"Distinct flows", std::to_string(report.distinct_flows)});
  table.add_row({"TCP frames",
                 std::to_string(report.tcp_control.tcp_frames)});
  table.add_row({"Pure ACKs (congestion feedback)",
                 std::to_string(report.tcp_control.pure_ack)});
  table.add_row({"SYN / FIN / RST",
                 std::to_string(report.tcp_control.syn) + " / " +
                     std::to_string(report.tcp_control.fin) + " / " +
                     std::to_string(report.tcp_control.rst)});
  table.add_row({"Jumbo share",
                 util::fmt_percent(report.frame_sizes.jumbo_fraction(), 1)});
  std::cout << "\n";
  table.print(std::cout);

  std::cout << "\nNote: every frame here came from the slice's own ports — "
               "single-experiment\nmode never sees other users' traffic "
               "(access control stays with the testbed).\n";
  return 0;
}
