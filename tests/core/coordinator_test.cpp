#include "core/coordinator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "testing/env_fixture.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

ProfilerConfig tiny_config() {
  ProfilerConfig config;
  config.plan.cycles = 1;
  config.plan.samples_per_run = 1;
  config.plan.runs_per_cycle = 1;
  config.plan.max_frames_per_sample = 150;
  config.crash_probability = 0.0;
  config.desired_instances = 1;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;
  return config;
}

testbed::FederationSpec small_spec() {
  testbed::FederationSpec spec;
  spec.sites = 6;
  return spec;
}

TEST(Coordinator, AllExperimentSkipsTeachingSite) {
  World world(1, small_spec());
  world.warm_up_telemetry();
  Coordinator coordinator(world.env, tiny_config());
  const ProfileRun run = coordinator.run_all_experiment();
  // One report per production site; the teaching site is skipped.
  EXPECT_EQ(run.reports.size(), world.fed.site_count() - 1);
  for (const SiteRunReport& r : run.reports) {
    EXPECT_FALSE(world.fed.site(r.site).teaching_only());
  }
}

TEST(Coordinator, SuccessfulRunGathersCaptures) {
  World world(2, small_spec());
  world.warm_up_telemetry();
  Coordinator coordinator(world.env, tiny_config());
  const ProfileRun run = coordinator.run_all_experiment();
  EXPECT_GT(run.success_fraction(), 0.5);
  EXPECT_FALSE(run.captures.empty());
  std::set<std::string> sites;
  for (const auto& c : run.captures) sites.insert(c.site);
  EXPECT_GT(sites.size(), 1u);  // Multiple sites contributed.
}

TEST(Coordinator, ResourcesYieldedAfterRun) {
  World world(3, small_spec());
  world.warm_up_telemetry();
  std::vector<std::size_t> before;
  for (testbed::SiteId id : world.fed.site_ids()) {
    before.push_back(world.fed.site(id).count_available_nics(
        testbed::NicKind::kDedicatedConnectX));
  }
  Coordinator coordinator(world.env, tiny_config());
  coordinator.run_all_experiment();
  for (testbed::SiteId id : world.fed.site_ids()) {
    EXPECT_EQ(world.fed.site(id).count_available_nics(
                  testbed::NicKind::kDedicatedConnectX),
              before[id.value])
        << "site " << id.value;
    EXPECT_TRUE(world.fed.site(id).tor().mirrors().empty());
  }
}

TEST(Coordinator, RunOnSitesRestrictsScope) {
  World world(4, small_spec());
  world.warm_up_telemetry();
  Coordinator coordinator(world.env, tiny_config());
  const ProfileRun run =
      coordinator.run_on_sites({testbed::SiteId{0}, testbed::SiteId{2}});
  EXPECT_EQ(run.reports.size(), 2u);
  for (const auto& c : run.captures) {
    EXPECT_TRUE(c.site == world.fed.site(testbed::SiteId{0}).name() ||
                c.site == world.fed.site(testbed::SiteId{2}).name());
  }
}

TEST(Coordinator, SingleExperimentOnlySeesSlicePorts) {
  World world(5, small_spec());
  world.warm_up_telemetry();
  // The "slice" uses two specific downlink ports at site 1.
  const std::vector<testbed::GlobalPortId> slice_ports = {
      {testbed::SiteId{1}, testbed::PortId{4}},
      {testbed::SiteId{1}, testbed::PortId{5}},
  };
  Coordinator coordinator(world.env, tiny_config());
  const ProfileRun run = coordinator.run_single_experiment(slice_ports);
  EXPECT_EQ(run.mode, ProfileMode::kSingleExperiment);
  EXPECT_EQ(run.reports.size(), 1u);
  ASSERT_FALSE(run.captures.empty());
  for (const auto& c : run.captures) {
    EXPECT_TRUE(c.port == 4 || c.port == 5) << c.port;
  }
}

TEST(Coordinator, OutcomeCountsAndSuccessFraction) {
  ProfileRun run;
  SiteRunReport ok;
  ok.outcome = RunOutcome::kSuccess;
  SiteRunReport degraded;
  degraded.outcome = RunOutcome::kDegraded;
  SiteRunReport failed;
  failed.outcome = RunOutcome::kFailed;
  run.reports = {ok, ok, degraded, failed};
  EXPECT_EQ(run.outcome_count(RunOutcome::kSuccess), 2u);
  EXPECT_EQ(run.outcome_count(RunOutcome::kDegraded), 1u);
  EXPECT_DOUBLE_EQ(run.success_fraction(), 0.75);
}

TEST(Coordinator, CompressedTransfersShrinkAndRoundTrip) {
  World world(7, small_spec());
  world.warm_up_telemetry();
  ProfilerConfig config = tiny_config();
  config.plan.max_frames_per_sample = 2000;  // Enough bytes to compress.
  config.compress_transfers = true;
  Coordinator coordinator(world.env, config);
  const ProfileRun run = coordinator.run_on_sites({testbed::SiteId{0}});
  ASSERT_EQ(run.reports.size(), 1u);
  const SiteRunReport& report = run.reports.front();
  ASSERT_GT(report.pcap_bytes, 0u);
  // Truncated-header pcaps compress well; the download moved fewer bytes.
  EXPECT_LT(report.transferred_bytes, report.pcap_bytes);
  // And the decompressed captures still digest cleanly.
  analysis::DigestStats stats;
  analysis::digest_all(run.captures, &stats);
  EXPECT_GT(stats.frames, 0u);
  EXPECT_EQ(stats.bad_records, 0u);
}

TEST(Coordinator, UncompressedTransfersMatchPcapBytes) {
  World world(8, small_spec());
  world.warm_up_telemetry();
  ProfilerConfig config = tiny_config();
  config.compress_transfers = false;
  Coordinator coordinator(world.env, config);
  const ProfileRun run = coordinator.run_on_sites({testbed::SiteId{1}});
  ASSERT_EQ(run.reports.size(), 1u);
  EXPECT_EQ(run.reports.front().transferred_bytes,
            run.reports.front().pcap_bytes);
}

TEST(Coordinator, ReportsCarrySampleAccounting) {
  World world(6, small_spec());
  world.warm_up_telemetry();
  Coordinator coordinator(world.env, tiny_config());
  const ProfileRun run = coordinator.run_all_experiment();
  for (const SiteRunReport& r : run.reports) {
    if (r.outcome == RunOutcome::kSuccess ||
        r.outcome == RunOutcome::kDegraded) {
      EXPECT_GT(r.samples, 0u) << r.site_name;
      EXPECT_GT(r.pcap_bytes, 0u) << r.site_name;
    }
  }
}

}  // namespace
}  // namespace patchwork::core
