// Contract tests for the testbed abstraction layer: the same expectations
// run over the FABRIC-like and Emulab-like backends, demonstrating the
// Section 9 portability claim.
#include "core/testbed_backend.hpp"

#include <gtest/gtest.h>

#include "net/parser.hpp"

namespace patchwork::core {
namespace {

enum class Flavor { kFabric, kEmulab };

class BackendContract : public ::testing::TestWithParam<Flavor> {
 protected:
  std::unique_ptr<TestbedBackend> make() {
    return GetParam() == Flavor::kFabric ? make_fabric_like_backend(5)
                                         : make_emulab_like_backend(5);
  }
};

TEST_P(BackendContract, LeaseAcquireReleaseRestoresInventory) {
  auto backend = make();
  const std::size_t before = backend->available_capture_nics();
  ASSERT_GT(before, 0u);
  auto result = backend->acquire_capture_node();
  ASSERT_TRUE(std::holds_alternative<TestbedBackend::CaptureLease>(result));
  const auto lease = std::get<TestbedBackend::CaptureLease>(result);
  EXPECT_FALSE(lease.destinations.empty());
  EXPECT_EQ(backend->available_capture_nics(), before - 1);
  backend->release(lease);
  EXPECT_EQ(backend->available_capture_nics(), before);
}

TEST_P(BackendContract, ExhaustionReportsError) {
  auto backend = make();
  std::vector<TestbedBackend::CaptureLease> held;
  for (int i = 0; i < 32; ++i) {
    auto result = backend->acquire_capture_node();
    if (std::holds_alternative<testbed::AllocError>(result)) {
      EXPECT_EQ(std::get<testbed::AllocError>(result),
                testbed::AllocError::kNoDedicatedNic);
      for (const auto& lease : held) backend->release(lease);
      return;
    }
    held.push_back(std::get<TestbedBackend::CaptureLease>(result));
  }
  FAIL() << "backend never ran out of capture NICs";
}

TEST_P(BackendContract, MirrorLifecycle) {
  auto backend = make();
  auto result = backend->acquire_capture_node();
  ASSERT_TRUE(std::holds_alternative<TestbedBackend::CaptureLease>(result));
  const auto lease = std::get<TestbedBackend::CaptureLease>(result);
  const testbed::PortId dest = lease.destinations.front();

  // Choose a source from telemetry, excluding our own destinations.
  const auto rates = backend->port_rates(15 * util::kMinute);
  ASSERT_FALSE(rates.empty());
  testbed::PortId source = rates.front().port.port;
  for (const auto& r : rates) {
    if (std::find(lease.destinations.begin(), lease.destinations.end(),
                  r.port.port) == lease.destinations.end()) {
      source = r.port.port;
      break;
    }
  }
  EXPECT_TRUE(backend->mirror(source, dest));
  // Retarget to another candidate, then tear down.
  for (const auto& r : rates) {
    if (r.port.port == source || r.port.port == dest) continue;
    if (std::find(lease.destinations.begin(), lease.destinations.end(),
                  r.port.port) != lease.destinations.end()) {
      continue;
    }
    EXPECT_TRUE(backend->retarget(source, r.port.port));
    source = r.port.port;
    break;
  }
  EXPECT_TRUE(backend->unmirror(source));
  EXPECT_FALSE(backend->unmirror(source));
  backend->release(lease);
}

TEST_P(BackendContract, SampleProducesParsableTraffic) {
  auto backend = make();
  const auto rates = backend->port_rates(15 * util::kMinute);
  ASSERT_FALSE(rates.empty());
  const auto window =
      backend->sample(rates.front().port.port, 20 * util::kSecond, 500);
  ASSERT_FALSE(window.frames.empty());
  for (const net::Frame& f : window.frames) {
    const net::ParsedFrame parsed = net::parse_frame(f);
    EXPECT_FALSE(parsed.has(net::Protocol::kMalformed));
  }
}

TEST_P(BackendContract, TimeAdvances) {
  auto backend = make();
  const util::Nanos t0 = backend->now();
  backend->advance(util::kMinute);
  EXPECT_EQ(backend->now(), t0 + util::kMinute);
}

INSTANTIATE_TEST_SUITE_P(Flavors, BackendContract,
                         ::testing::Values(Flavor::kFabric, Flavor::kEmulab),
                         [](const auto& info) {
                           return info.param == Flavor::kFabric
                                      ? "FabricSim"
                                      : "EmulabSim";
                         });

// --- Flavor-specific expectations ------------------------------------------

TEST(BackendFlavors, FabricOffloadsEmulabDoesNot) {
  EXPECT_TRUE(make_fabric_like_backend(5)->supports_offload());
  EXPECT_FALSE(make_emulab_like_backend(5)->supports_offload());
}

TEST(BackendFlavors, UnderlayTaggingDiffers) {
  auto sample_stacks = [](TestbedBackend& backend) {
    std::size_t mpls = 0, frames = 0;
    const auto rates = backend.port_rates(15 * util::kMinute);
    for (std::size_t i = 0; i < std::min<std::size_t>(3, rates.size()); ++i) {
      const auto window =
          backend.sample(rates[i].port.port, 20 * util::kSecond, 400);
      for (const net::Frame& f : window.frames) {
        ++frames;
        if (net::parse_frame(f).has(net::Protocol::kMpls)) ++mpls;
      }
    }
    return frames ? static_cast<double>(mpls) / static_cast<double>(frames)
                  : 0.0;
  };
  auto fabric = make_fabric_like_backend(5);
  auto emulab = make_emulab_like_backend(5);
  EXPECT_GT(sample_stacks(*fabric), 0.5);   // MPLS underlay everywhere.
  EXPECT_EQ(sample_stacks(*emulab), 0.0);   // VLAN-only isolation.
}

TEST(BackendFlavors, EmulabHasFewerCaptureNics) {
  auto fabric = make_fabric_like_backend(5);
  auto emulab = make_emulab_like_backend(5);
  EXPECT_LT(emulab->available_capture_nics(),
            fabric->available_capture_nics());
}

}  // namespace
}  // namespace patchwork::core
