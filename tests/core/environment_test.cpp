#include "core/environment.hpp"

#include <gtest/gtest.h>

#include "testing/fixtures.hpp"
#include "testing/env_fixture.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

TEST(Environment, AdvanceMovesClock) {
  World world;
  world.env.advance(90 * util::kSecond);
  EXPECT_EQ(world.clock.now(), 90 * util::kSecond);
}

TEST(Environment, AdvancePollsEveryFiveMinutes) {
  World world;
  world.env.advance(26 * util::kMinute);
  // Polls at t=0 boundary handling: first poll at 0? next_poll_ starts 0 ->
  // poll happens on first step. Expect ~1 + 26/5 polls.
  EXPECT_GE(world.mflib.polls_completed(), 5u);
  EXPECT_LE(world.mflib.polls_completed(), 7u);
}

TEST(Environment, AdvanceAccumulatesCounters) {
  World world;
  world.env.advance(10 * util::kMinute);
  // Some port must have moved bytes (loads are non-zero somewhere).
  std::uint64_t total = 0;
  for (testbed::SiteId sid : world.fed.site_ids()) {
    const auto& tor = world.fed.site(sid).tor();
    for (std::uint32_t p = 0; p < tor.port_count(); ++p) {
      total += tor.port(testbed::PortId{p}).counters().tx_bytes;
    }
  }
  EXPECT_GT(total, 0u);
}

TEST(Environment, TelemetryRatesAvailableAfterWarmup) {
  World world;
  world.warm_up_telemetry();
  const auto rates = world.mflib.site_rates_sorted(testbed::SiteId{0},
                                                   15 * util::kMinute);
  EXPECT_FALSE(rates.empty());
}

TEST(Environment, SmallAdvancesAreExact) {
  World world;
  for (int i = 0; i < 10; ++i) world.env.advance(util::kSecond);
  EXPECT_EQ(world.clock.now(), 10 * util::kSecond);
}

}  // namespace
}  // namespace patchwork::core
