#include "core/mirror_scheduler.hpp"

#include <gtest/gtest.h>

namespace patchwork::core {
namespace {

testbed::ToRSwitch make_switch(std::size_t ports = 12) {
  std::vector<testbed::SwitchPort> v;
  for (std::size_t i = 0; i < 2; ++i) {
    v.emplace_back(testbed::PortKind::kUplink, 100e9);
  }
  for (std::size_t i = 2; i < ports; ++i) {
    v.emplace_back(testbed::PortKind::kDownlink, 100e9);
  }
  return testbed::ToRSwitch(std::move(v));
}

MirrorScheduler::Policy quantum(util::Nanos q) {
  MirrorScheduler::Policy p;
  p.quantum = q;
  return p;
}

TEST(MirrorScheduler, GrantsImmediatelyWhenFree) {
  testbed::ToRSwitch tor = make_switch();
  MirrorScheduler sched(tor, {testbed::PortId{10}, testbed::PortId{11}});
  const auto id = sched.submit(
      {"alice", testbed::PortId{3}, testbed::MirrorDirections::kBoth,
       5 * util::kMinute});
  sched.tick(0);
  ASSERT_EQ(sched.active().size(), 1u);
  EXPECT_EQ(sched.active()[0].request, id);
  EXPECT_EQ(sched.active()[0].user, "alice");
  // The hardware mirror is actually installed.
  EXPECT_TRUE(tor.mirror_for_source(testbed::PortId{3}).has_value());
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(MirrorScheduler, TwoUsersShareOneSourcePortOverTime) {
  // The headline feature: "only a single FABRIC user at a time can mirror
  // a specific switch port" — the scheduler serializes them.
  testbed::ToRSwitch tor = make_switch();
  MirrorScheduler sched(tor, {testbed::PortId{10}, testbed::PortId{11}},
                        quantum(10 * util::kMinute));
  const auto alice = sched.submit(
      {"alice", testbed::PortId{3}, testbed::MirrorDirections::kBoth,
       10 * util::kMinute});
  const auto bob = sched.submit(
      {"bob", testbed::PortId{3}, testbed::MirrorDirections::kBoth,
       10 * util::kMinute});
  sched.tick(0);
  // Only one can hold port 3, even with a second destination free.
  ASSERT_EQ(sched.active().size(), 1u);
  EXPECT_EQ(sched.active()[0].request, alice);
  EXPECT_TRUE(sched.is_pending(bob));
  // After alice's lease ends, bob gets the port.
  sched.tick(10 * util::kMinute);
  ASSERT_EQ(sched.active().size(), 1u);
  EXPECT_EQ(sched.active()[0].request, bob);
}

TEST(MirrorScheduler, QuantumSlicesLongRequests) {
  testbed::ToRSwitch tor = make_switch();
  MirrorScheduler sched(tor, {testbed::PortId{10}},
                        quantum(10 * util::kMinute));
  const auto id = sched.submit(
      {"alice", testbed::PortId{3}, testbed::MirrorDirections::kBoth,
       25 * util::kMinute});
  sched.tick(0);
  EXPECT_EQ(sched.remaining(id), 25 * util::kMinute);
  sched.tick(10 * util::kMinute);  // First quantum done, requeued+regranted.
  EXPECT_EQ(sched.remaining(id), 15 * util::kMinute);
  sched.tick(20 * util::kMinute);
  EXPECT_EQ(sched.remaining(id), 5 * util::kMinute);
  ASSERT_EQ(sched.active().size(), 1u);
  // Final slice is shorter than the quantum.
  EXPECT_EQ(sched.active()[0].expires, 25 * util::kMinute);
  sched.tick(25 * util::kMinute);
  EXPECT_TRUE(sched.active().empty());
  EXPECT_EQ(sched.remaining(id), 0u);
  EXPECT_EQ(sched.leases_granted(), 3u);
}

TEST(MirrorScheduler, FairnessLeastServedUserFirst) {
  testbed::ToRSwitch tor = make_switch();
  MirrorScheduler sched(tor, {testbed::PortId{10}},
                        quantum(10 * util::kMinute));
  // Alice asks for a long capture of port 3; bob later wants port 4.
  sched.submit({"alice", testbed::PortId{3},
                testbed::MirrorDirections::kBoth, util::kHour});
  sched.tick(0);
  sched.submit({"bob", testbed::PortId{4}, testbed::MirrorDirections::kBoth,
                10 * util::kMinute});
  // When alice's quantum expires, bob (zero service so far) wins the slot
  // even though alice requeued first... (she has 10 min of service).
  sched.tick(10 * util::kMinute);
  ASSERT_EQ(sched.active().size(), 1u);
  EXPECT_EQ(sched.active()[0].user, "bob");
  // Alice resumes afterwards.
  sched.tick(20 * util::kMinute);
  ASSERT_EQ(sched.active().size(), 1u);
  EXPECT_EQ(sched.active()[0].user, "alice");
  EXPECT_EQ(sched.service_time().at("alice"), 10 * util::kMinute);
  EXPECT_EQ(sched.service_time().at("bob"), 10 * util::kMinute);
}

TEST(MirrorScheduler, MultipleDestinationsServeConcurrently) {
  testbed::ToRSwitch tor = make_switch();
  MirrorScheduler sched(tor, {testbed::PortId{10}, testbed::PortId{11}});
  sched.submit({"alice", testbed::PortId{3},
                testbed::MirrorDirections::kBoth, util::kMinute});
  sched.submit({"bob", testbed::PortId{4}, testbed::MirrorDirections::kBoth,
                util::kMinute});
  sched.tick(0);
  EXPECT_EQ(sched.active().size(), 2u);
  EXPECT_TRUE(sched.lease_on(testbed::PortId{10}).has_value());
  EXPECT_TRUE(sched.lease_on(testbed::PortId{11}).has_value());
}

TEST(MirrorScheduler, CancelPendingAndActive) {
  testbed::ToRSwitch tor = make_switch();
  MirrorScheduler sched(tor, {testbed::PortId{10}});
  const auto a = sched.submit({"alice", testbed::PortId{3},
                               testbed::MirrorDirections::kBoth,
                               util::kHour});
  const auto b = sched.submit({"bob", testbed::PortId{4},
                               testbed::MirrorDirections::kBoth,
                               util::kHour});
  sched.tick(0);
  EXPECT_TRUE(sched.cancel(b, util::kMinute));  // Pending.
  EXPECT_EQ(sched.pending_count(), 0u);
  // Active: hardware mirror torn down, elapsed quantum credited.
  EXPECT_TRUE(sched.cancel(a, util::kMinute));
  EXPECT_TRUE(sched.active().empty());
  EXPECT_FALSE(tor.mirror_for_source(testbed::PortId{3}).has_value());
  EXPECT_EQ(sched.service_time().at("alice"), util::kMinute);
  EXPECT_FALSE(sched.cancel(a, util::kMinute));  // Gone.
}

TEST(MirrorScheduler, CancelResubmitLoopCannotStarveOthers) {
  // Regression: cancel() used to release an active lease without crediting
  // the elapsed quantum, so a user who cancelled and resubmitted mid-quantum
  // kept zero accumulated service and won every least-served arbitration.
  testbed::ToRSwitch tor = make_switch();
  MirrorScheduler sched(tor, {testbed::PortId{10}},
                        quantum(10 * util::kMinute));
  auto alice = sched.submit({"alice", testbed::PortId{3},
                             testbed::MirrorDirections::kBoth, util::kHour});
  sched.tick(0);
  ASSERT_EQ(sched.active().size(), 1u);
  // Mid-quantum, alice cancels and resubmits; bob (never served) then asks
  // for a different port.
  EXPECT_TRUE(sched.cancel(alice, 5 * util::kMinute));
  alice = sched.submit({"alice", testbed::PortId{3},
                        testbed::MirrorDirections::kBoth, util::kHour});
  sched.submit({"bob", testbed::PortId{4},
                testbed::MirrorDirections::kBoth, 10 * util::kMinute});
  EXPECT_EQ(sched.service_time().at("alice"), 5 * util::kMinute);
  // The freed slot must go to bob: alice already consumed 5 minutes even
  // though her lease never expired. (Pre-fix, alice's credit was 0 and her
  // earlier sequence number won the tie.)
  sched.tick(5 * util::kMinute);
  ASSERT_EQ(sched.active().size(), 1u);
  EXPECT_EQ(sched.active()[0].user, "bob");
  EXPECT_TRUE(sched.is_pending(alice));
}

TEST(MirrorScheduler, RespectsExternallyBusyPorts) {
  testbed::ToRSwitch tor = make_switch();
  // Someone else (outside the scheduler) already mirrors port 3.
  ASSERT_TRUE(tor.add_mirror({testbed::PortId{3},
                              testbed::MirrorDirections::kBoth,
                              testbed::PortId{5}}));
  MirrorScheduler sched(tor, {testbed::PortId{10}});
  sched.submit({"alice", testbed::PortId{3},
                testbed::MirrorDirections::kBoth, util::kMinute});
  sched.tick(0);
  EXPECT_TRUE(sched.active().empty());
  EXPECT_EQ(sched.pending_count(), 1u);
  // Once the external mirror goes away, the request proceeds.
  tor.remove_mirror(testbed::PortId{3});
  sched.tick(util::kSecond);
  EXPECT_EQ(sched.active().size(), 1u);
}

TEST(MirrorScheduler, ServiceTimeAccumulates) {
  testbed::ToRSwitch tor = make_switch();
  MirrorScheduler sched(tor, {testbed::PortId{10}},
                        quantum(5 * util::kMinute));
  sched.submit({"alice", testbed::PortId{3},
                testbed::MirrorDirections::kBoth, 15 * util::kMinute});
  sched.tick(0);
  sched.tick(5 * util::kMinute);
  sched.tick(10 * util::kMinute);
  sched.tick(15 * util::kMinute);
  EXPECT_EQ(sched.service_time().at("alice"), 15 * util::kMinute);
}

}  // namespace
}  // namespace patchwork::core
