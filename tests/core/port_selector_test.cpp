#include "core/port_selector.hpp"

#include <gtest/gtest.h>

#include <map>

namespace patchwork::core {
namespace {

std::vector<telemetry::PortRate> make_rates(
    std::initializer_list<std::pair<std::uint32_t, double>> ports) {
  std::vector<telemetry::PortRate> out;
  for (const auto& [index, bps] : ports) {
    telemetry::PortRate r;
    r.port = {testbed::SiteId{0}, testbed::PortId{index}};
    r.tx_bps = bps;
    r.rx_bps = 0.0;
    out.push_back(r);
  }
  // MfLib returns rates busiest-first.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.total() > b.total(); });
  return out;
}

TEST(PortSelector, BusiestBiasPicksBusiestOnBusyCycle) {
  SamplingPlan plan;
  plan.policy = PortPolicy::kBusiestBias;
  plan.busiest_bias_n = 4;
  util::Rng rng(1);
  PortSelector selector(plan, rng);
  // Cycle 0 is a busiest-port cycle (0 % 4 == 0).
  const auto rates = make_rates({{1, 1e9}, {2, 50e9}, {3, 10e9}});
  const auto chosen = selector.next(rates);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->value, 2u);
}

TEST(PortSelector, BusiestBiasAvoidsRecentlySampledBusiest) {
  SamplingPlan plan;
  plan.busiest_bias_n = 4;
  util::Rng rng(1);
  PortSelector selector(plan, rng);
  const auto rates = make_rates({{1, 1e9}, {2, 50e9}, {3, 10e9}});
  const auto first = selector.next(rates);
  ASSERT_TRUE(first.has_value());
  // Advance to the next busiest cycle (cycles 1-3 are random picks).
  selector.next(rates);
  selector.next(rates);
  selector.next(rates);
  const auto second = selector.next(rates);  // Cycle 4: busiest again.
  ASSERT_TRUE(second.has_value());
  // Port 2 was sampled at cycle 0 which is within the last n=4 cycles...
  // cycle 4 - lookback 4 = cycle 0 inclusive, so port 2 is excluded and
  // the next-busiest unsampled port is chosen.
  EXPECT_NE(second->value, 2u);
}

TEST(PortSelector, BusiestBiasSkipsIdlePortsOnRandomCycles) {
  SamplingPlan plan;
  plan.busiest_bias_n = 3;
  plan.idle_threshold_bps = 1e6;
  util::Rng rng(7);
  PortSelector selector(plan, rng);
  const auto rates = make_rates({{1, 0.0}, {2, 5e9}, {3, 8e9}});
  for (int i = 0; i < 30; ++i) {
    const auto chosen = selector.next(rates);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_NE(chosen->value, 1u);  // Idle port never picked.
  }
}

TEST(PortSelector, BusiestBiasFallsBackWhenAllIdle) {
  SamplingPlan plan;
  util::Rng rng(7);
  PortSelector selector(plan, rng);
  const auto rates = make_rates({{4, 0.0}, {5, 0.0}});
  const auto chosen = selector.next(rates);
  ASSERT_TRUE(chosen.has_value());  // Still samples something.
}

TEST(PortSelector, EmptyCandidatesYieldNothing) {
  SamplingPlan plan;
  util::Rng rng(7);
  PortSelector selector(plan, rng);
  EXPECT_FALSE(selector.next({}).has_value());
}

TEST(PortSelector, FixedPolicyRotatesThroughList) {
  SamplingPlan plan;
  plan.policy = PortPolicy::kFixed;
  util::Rng rng(1);
  PortSelector selector(plan, rng,
                        {testbed::PortId{7}, testbed::PortId{9}});
  EXPECT_EQ(selector.next({})->value, 7u);
  EXPECT_EQ(selector.next({})->value, 9u);
  EXPECT_EQ(selector.next({})->value, 7u);
}

TEST(PortSelector, FixedPolicyWithoutPortsYieldsNothing) {
  SamplingPlan plan;
  plan.policy = PortPolicy::kFixed;
  util::Rng rng(1);
  PortSelector selector(plan, rng);
  EXPECT_FALSE(selector.next(make_rates({{1, 1e9}})).has_value());
}

TEST(PortSelector, RoundRobinCoversAllPortsIncludingIdle) {
  SamplingPlan plan;
  plan.policy = PortPolicy::kRoundRobinAll;
  util::Rng rng(1);
  PortSelector selector(plan, rng);
  const auto rates = make_rates({{1, 0.0}, {2, 1e9}, {3, 0.0}});
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 6; ++i) {
    const auto chosen = selector.next(rates);
    ASSERT_TRUE(chosen.has_value());
    counts[chosen->value]++;
  }
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [port, n] : counts) EXPECT_EQ(n, 2) << port;
}

TEST(PortSelector, CustomHeuristicIsInvoked) {
  SamplingPlan plan;
  plan.policy = PortPolicy::kCustom;
  util::Rng rng(1);
  // "Users can also add their own heuristics": pick the *least* busy port.
  PortSelector selector(
      plan, rng, {},
      [](const std::vector<telemetry::PortRate>& rates,
         std::uint32_t) -> std::optional<testbed::PortId> {
        if (rates.empty()) return std::nullopt;
        return rates.back().port.port;
      });
  const auto rates = make_rates({{1, 1e9}, {2, 50e9}});
  EXPECT_EQ(selector.next(rates)->value, 1u);
}

TEST(PortSelector, HistoryStaysBoundedOverLongRuns) {
  // Regression: history_ used to grow one entry per cycle forever — a
  // 13-month-style deployment leaked memory and sampled_recently() scanned
  // the whole lifetime. record() now prunes everything older than the
  // largest lookback window.
  SamplingPlan plan;
  plan.policy = PortPolicy::kFixed;
  plan.busiest_bias_n = 4;
  util::Rng rng(1);
  PortSelector selector(plan, rng, {testbed::PortId{3}, testbed::PortId{5}});
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(selector.next({}).has_value());
    // One live entry per cycle inside the window, plus the entry recorded
    // this cycle: never more than lookback + 1.
    ASSERT_LE(selector.sample_history().size(), 5u) << "cycle " << i;
  }
  EXPECT_EQ(selector.cycles_run(), 10000u);
}

TEST(PortSelector, PrunedHistoryKeepsExactlyTheLookbackWindow) {
  // Pruning must retain every entry sampled_recently() could consult: all
  // cycles within the largest lookback (busiest_bias_n, floored at 2).
  SamplingPlan plan;
  plan.busiest_bias_n = 4;
  util::Rng rng(1);
  PortSelector selector(plan, rng);
  const auto rates = make_rates({{1, 1e9}, {2, 50e9}, {3, 10e9}});
  for (int i = 0; i < 100; ++i) selector.next(rates);
  ASSERT_FALSE(selector.sample_history().empty());
  for (const auto& [port, cycle] : selector.sample_history()) {
    // The last record happened at cycle 99 with floor 99 - 4 = 95: older
    // entries are gone, everything a lookback-4 query needs is present.
    EXPECT_GE(cycle, 95u);
    EXPECT_LT(cycle, 100u);
  }
}

TEST(PortSelector, HistoryRecordsChoices) {
  SamplingPlan plan;
  plan.policy = PortPolicy::kFixed;
  util::Rng rng(1);
  PortSelector selector(plan, rng, {testbed::PortId{3}});
  selector.next({});
  selector.next({});
  EXPECT_EQ(selector.cycles_run(), 2u);
  EXPECT_EQ(selector.sample_history().size(), 2u);
  EXPECT_EQ(selector.sample_history()[0].first.value, 3u);
}

}  // namespace
}  // namespace patchwork::core
