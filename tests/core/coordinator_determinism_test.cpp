// The parallel online path's contract: a coordinator run over a same-seed
// world produces byte-identical results for every thread count. The control
// plane is serial by construction; the data plane renders each site from a
// child RNG stream split off the run seed by site id, so pcap bytes depend
// only on (seed, site) — never on which worker rendered the site or in
// what order the strands interleaved.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "core/coordinator.hpp"
#include "obs/metrics.hpp"
#include "testing/env_fixture.hpp"
#include "util/parallel.hpp"
#include "util/philox_simd.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(std::nullopt); }
};

ProfilerConfig multi_sample_config() {
  ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 2;
  config.plan.runs_per_cycle = 1;
  config.plan.max_frames_per_sample = 300;
  config.crash_probability = 0.0;
  config.desired_instances = 1;
  config.compress_transfers = true;
  return config;
}

testbed::FederationSpec wide_spec() {
  testbed::FederationSpec spec;
  spec.sites = 8;
  return spec;
}

/// One full same-seed run: fresh world, warm telemetry, all-experiment
/// profile. The World is rebuilt per call so every thread count starts
/// from an identical simulation state.
ProfileRun run_world(std::uint64_t seed) {
  World world(seed, wide_spec());
  world.warm_up_telemetry();
  Coordinator coordinator(world.env, multi_sample_config());
  return coordinator.run_all_experiment();
}

void expect_runs_identical(const ProfileRun& a, const ProfileRun& b,
                           const std::string& label) {
  ASSERT_EQ(a.reports.size(), b.reports.size()) << label;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const SiteRunReport& ra = a.reports[i];
    const SiteRunReport& rb = b.reports[i];
    EXPECT_EQ(ra.site.value, rb.site.value) << label << " report " << i;
    EXPECT_EQ(ra.site_name, rb.site_name) << label << " report " << i;
    EXPECT_EQ(ra.outcome, rb.outcome) << label << " report " << i;
    EXPECT_EQ(ra.instances, rb.instances) << label << " report " << i;
    EXPECT_EQ(ra.backoffs, rb.backoffs) << label << " report " << i;
    EXPECT_EQ(ra.samples, rb.samples) << label << " report " << i;
    EXPECT_EQ(ra.pcap_bytes, rb.pcap_bytes) << label << " report " << i;
    EXPECT_EQ(ra.transferred_bytes, rb.transferred_bytes)
        << label << " report " << i;
  }
  ASSERT_EQ(a.captures.size(), b.captures.size()) << label;
  for (std::size_t i = 0; i < a.captures.size(); ++i) {
    const analysis::RawCapture& ca = a.captures[i];
    const analysis::RawCapture& cb = b.captures[i];
    EXPECT_EQ(ca.site, cb.site) << label << " capture " << i;
    EXPECT_EQ(ca.port, cb.port) << label << " capture " << i;
    EXPECT_EQ(ca.start, cb.start) << label << " capture " << i;
    EXPECT_EQ(ca.switch_drops_suspected, cb.switch_drops_suspected)
        << label << " capture " << i;
    // The strong claim: the pcap BYTES are identical, not just the sizes.
    ASSERT_EQ(ca.pcap.size(), cb.pcap.size()) << label << " capture " << i;
    EXPECT_TRUE(ca.pcap == cb.pcap)
        << label << " capture " << i << " pcap bytes differ";
  }
}

TEST(CoordinatorDeterminism, IdenticalRunsAcrossThreadCounts) {
  ThreadCountGuard guard;

  util::set_thread_count(0);  // Serial reference.
  const ProfileRun reference = run_world(/*seed=*/11);
  ASSERT_FALSE(reference.captures.empty());

  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const ProfileRun parallel = run_world(/*seed=*/11);
    expect_runs_identical(reference, parallel,
                          "threads=" + std::to_string(threads));
  }
}

TEST(CoordinatorDeterminism, PipelineCsvsIdenticalAcrossThreadCounts) {
  // End to end: the whole online + offline path at 0 vs 8 workers must
  // emit byte-identical CSVs.
  ThreadCountGuard guard;

  util::set_thread_count(0);
  const ProfileRun serial_run = run_world(/*seed=*/23);
  const analysis::ProfileReport serial =
      analysis::run_pipeline(serial_run.captures);

  util::set_thread_count(8);
  const ProfileRun parallel_run = run_world(/*seed=*/23);
  const analysis::ProfileReport parallel =
      analysis::run_pipeline(parallel_run.captures);

  EXPECT_EQ(serial.digest_stats.frames, parallel.digest_stats.frames);
  EXPECT_EQ(serial.distinct_flows, parallel.distinct_flows);
  ASSERT_EQ(serial.csv_files.size(), parallel.csv_files.size());
  for (const auto& [name, bytes] : serial.csv_files) {
    ASSERT_TRUE(parallel.csv_files.count(name)) << name;
    EXPECT_EQ(bytes, parallel.csv_files.at(name)) << name << " differs";
  }
}

/// The per-sample split's motivating workload: one hot site holds >80% of
/// all pending samples. Site 0 keeps its full complement of six dedicated
/// NICs while site 1 is squeezed down to one by a foreign slice, so the
/// hot site renders 12 mirror slots against the cold site's 2. Per-site
/// task granularity would serialize behind site 0; per-sample granularity
/// still fills the pool — and must stay byte-identical while doing so.
struct SkewedArtifacts {
  ProfileRun run;
  std::string expose_deterministic;
};

SkewedArtifacts run_skewed_world(std::uint64_t seed) {
  obs::registry().reset();
  testbed::FederationSpec spec;
  spec.sites = 3;  // Sites 0 and 1 profile; site 2 is the teaching site.
  spec.min_dedicated_nics = 6;
  spec.max_dedicated_nics = 6;
  spec.min_downlinks = 40;  // Plenty of switch ports for all six NICs.
  spec.max_downlinks = 40;
  World world(seed, spec);

  testbed::Site& cold = world.fed.site(testbed::SiteId{1});
  auto nics = cold.available_nics(testbed::NicKind::kDedicatedConnectX);
  EXPECT_EQ(nics.size(), 6u);
  for (std::size_t i = 0; i + 1 < nics.size(); ++i) {
    cold.mutable_nic(nics[i]).allocated_to = testbed::SliceId{999};
  }

  world.warm_up_telemetry();
  ProfilerConfig config = multi_sample_config();
  config.desired_instances = 0;  // One instance per free NIC: 6 vs 1.
  Coordinator coordinator(world.env, config);
  SkewedArtifacts out;
  out.run = coordinator.run_all_experiment();
  out.expose_deterministic = obs::expose_text(/*deterministic_only=*/true);
  return out;
}

TEST(CoordinatorDeterminism, SkewedHotSiteIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;

  util::set_thread_count(0);  // Serial reference.
  const SkewedArtifacts reference = run_skewed_world(/*seed=*/47);
  ASSERT_FALSE(reference.run.captures.empty());

  // Confirm the workload really is skewed: the hot site must hold more
  // than 80% of all samples, with the cold site still contributing.
  std::size_t hot = 0, total = 0;
  for (const SiteRunReport& r : reference.run.reports) {
    total += r.samples;
    if (r.site.value == 0) hot = r.samples;
  }
  ASSERT_GT(total, 0u);
  ASSERT_LT(hot, total) << "cold site contributed no samples";
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.8)
      << "hot site holds " << hot << "/" << total
      << " samples — workload not skewed enough to exercise the split";

  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const SkewedArtifacts parallel = run_skewed_world(/*seed=*/47);
    const std::string label = "skewed threads=" + std::to_string(threads);
    expect_runs_identical(reference.run, parallel.run, label);
    EXPECT_EQ(reference.expose_deterministic, parallel.expose_deterministic)
        << label << ": deterministic exposition differs";
  }
}

TEST(CoordinatorDeterminism, RenderBatchSizeInvariant) {
  // The synthesis burst size tunes scheduling granularity only: any batch
  // value must reproduce the serial reference bytes exactly, because every
  // frame's draws are addressed by (unit stream, counter), not by burst.
  ThreadCountGuard guard;

  auto run_batched = [](std::size_t batch) {
    World world(/*seed=*/11, wide_spec());
    world.warm_up_telemetry();
    ProfilerConfig config = multi_sample_config();
    config.render_batch_frames = batch;
    Coordinator coordinator(world.env, config);
    return coordinator.run_all_experiment();
  };

  util::set_thread_count(0);
  const ProfileRun reference = run_batched(1024);
  ASSERT_FALSE(reference.captures.empty());

  for (std::size_t batch : {std::size_t{1}, std::size_t{17},
                            std::size_t{4096}}) {
    util::set_thread_count(2);
    const ProfileRun parallel = run_batched(batch);
    expect_runs_identical(reference, parallel,
                          "batch=" + std::to_string(batch));
  }
}

TEST(CoordinatorDeterminism, SimdTierInvariant) {
  // The vector kernel tier is a throughput knob, never a bytes knob:
  // forcing each compiled-and-supported ISA tier through the config must
  // reproduce the scalar reference run exactly — pcap bytes, reports, and
  // the deterministic metrics exposition — serial and parallel alike.
  ThreadCountGuard guard;
  struct SimdGuard {
    ~SimdGuard() { util::reset_simd_tier(); }
  } simd_guard;

  auto run_tier = [](util::SimdTier tier) {
    obs::registry().reset();
    World world(/*seed=*/11, wide_spec());
    world.warm_up_telemetry();
    ProfilerConfig config = multi_sample_config();
    config.simd_tier = std::string(util::to_string(tier));
    Coordinator coordinator(world.env, config);
    SkewedArtifacts out;
    out.run = coordinator.run_all_experiment();
    out.expose_deterministic = obs::expose_text(/*deterministic_only=*/true);
    return out;
  };

  util::set_thread_count(0);
  const SkewedArtifacts reference = run_tier(util::SimdTier::kScalar);
  ASSERT_FALSE(reference.run.captures.empty());
  EXPECT_EQ(util::simd_tier(), util::SimdTier::kScalar)
      << "config knob did not reach the dispatcher";

  for (util::SimdTier tier :
       {util::SimdTier::kScalar, util::SimdTier::kSse4,
        util::SimdTier::kAvx2}) {
    if (!util::simd_tier_supported(tier)) continue;
    for (std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
      util::set_thread_count(threads);
      const SkewedArtifacts forced = run_tier(tier);
      const std::string label = "simd=" + std::string(util::to_string(tier)) +
                                " threads=" + std::to_string(threads);
      expect_runs_identical(reference.run, forced.run, label);
      EXPECT_EQ(reference.expose_deterministic, forced.expose_deterministic)
          << label << ": deterministic exposition differs";
    }
  }
}

TEST(CoordinatorDeterminism, SingleExperimentIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const std::vector<testbed::GlobalPortId> slice_ports = {
      {testbed::SiteId{1}, testbed::PortId{4}},
      {testbed::SiteId{2}, testbed::PortId{5}},
  };
  auto run_single = [&] {
    World world(/*seed=*/31, wide_spec());
    world.warm_up_telemetry();
    Coordinator coordinator(world.env, multi_sample_config());
    return coordinator.run_single_experiment(slice_ports);
  };

  util::set_thread_count(0);
  const ProfileRun reference = run_single();
  util::set_thread_count(8);
  const ProfileRun parallel = run_single();
  expect_runs_identical(reference, parallel, "single-experiment");
}

}  // namespace
}  // namespace patchwork::core
