// The parallel online path's contract: a coordinator run over a same-seed
// world produces byte-identical results for every thread count. The control
// plane is serial by construction; the data plane renders each site from a
// child RNG stream split off the run seed by site id, so pcap bytes depend
// only on (seed, site) — never on which worker rendered the site or in
// what order the strands interleaved.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "core/coordinator.hpp"
#include "testing/env_fixture.hpp"
#include "util/parallel.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(std::nullopt); }
};

ProfilerConfig multi_sample_config() {
  ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 2;
  config.plan.runs_per_cycle = 1;
  config.plan.max_frames_per_sample = 300;
  config.crash_probability = 0.0;
  config.desired_instances = 1;
  config.compress_transfers = true;
  return config;
}

testbed::FederationSpec wide_spec() {
  testbed::FederationSpec spec;
  spec.sites = 8;
  return spec;
}

/// One full same-seed run: fresh world, warm telemetry, all-experiment
/// profile. The World is rebuilt per call so every thread count starts
/// from an identical simulation state.
ProfileRun run_world(std::uint64_t seed) {
  World world(seed, wide_spec());
  world.warm_up_telemetry();
  Coordinator coordinator(world.env, multi_sample_config());
  return coordinator.run_all_experiment();
}

void expect_runs_identical(const ProfileRun& a, const ProfileRun& b,
                           const std::string& label) {
  ASSERT_EQ(a.reports.size(), b.reports.size()) << label;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const SiteRunReport& ra = a.reports[i];
    const SiteRunReport& rb = b.reports[i];
    EXPECT_EQ(ra.site.value, rb.site.value) << label << " report " << i;
    EXPECT_EQ(ra.site_name, rb.site_name) << label << " report " << i;
    EXPECT_EQ(ra.outcome, rb.outcome) << label << " report " << i;
    EXPECT_EQ(ra.instances, rb.instances) << label << " report " << i;
    EXPECT_EQ(ra.backoffs, rb.backoffs) << label << " report " << i;
    EXPECT_EQ(ra.samples, rb.samples) << label << " report " << i;
    EXPECT_EQ(ra.pcap_bytes, rb.pcap_bytes) << label << " report " << i;
    EXPECT_EQ(ra.transferred_bytes, rb.transferred_bytes)
        << label << " report " << i;
  }
  ASSERT_EQ(a.captures.size(), b.captures.size()) << label;
  for (std::size_t i = 0; i < a.captures.size(); ++i) {
    const analysis::RawCapture& ca = a.captures[i];
    const analysis::RawCapture& cb = b.captures[i];
    EXPECT_EQ(ca.site, cb.site) << label << " capture " << i;
    EXPECT_EQ(ca.port, cb.port) << label << " capture " << i;
    EXPECT_EQ(ca.start, cb.start) << label << " capture " << i;
    EXPECT_EQ(ca.switch_drops_suspected, cb.switch_drops_suspected)
        << label << " capture " << i;
    // The strong claim: the pcap BYTES are identical, not just the sizes.
    ASSERT_EQ(ca.pcap.size(), cb.pcap.size()) << label << " capture " << i;
    EXPECT_TRUE(ca.pcap == cb.pcap)
        << label << " capture " << i << " pcap bytes differ";
  }
}

TEST(CoordinatorDeterminism, IdenticalRunsAcrossThreadCounts) {
  ThreadCountGuard guard;

  util::set_thread_count(0);  // Serial reference.
  const ProfileRun reference = run_world(/*seed=*/11);
  ASSERT_FALSE(reference.captures.empty());

  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const ProfileRun parallel = run_world(/*seed=*/11);
    expect_runs_identical(reference, parallel,
                          "threads=" + std::to_string(threads));
  }
}

TEST(CoordinatorDeterminism, PipelineCsvsIdenticalAcrossThreadCounts) {
  // End to end: the whole online + offline path at 0 vs 8 workers must
  // emit byte-identical CSVs.
  ThreadCountGuard guard;

  util::set_thread_count(0);
  const ProfileRun serial_run = run_world(/*seed=*/23);
  const analysis::ProfileReport serial =
      analysis::run_pipeline(serial_run.captures);

  util::set_thread_count(8);
  const ProfileRun parallel_run = run_world(/*seed=*/23);
  const analysis::ProfileReport parallel =
      analysis::run_pipeline(parallel_run.captures);

  EXPECT_EQ(serial.digest_stats.frames, parallel.digest_stats.frames);
  EXPECT_EQ(serial.distinct_flows, parallel.distinct_flows);
  ASSERT_EQ(serial.csv_files.size(), parallel.csv_files.size());
  for (const auto& [name, bytes] : serial.csv_files) {
    ASSERT_TRUE(parallel.csv_files.count(name)) << name;
    EXPECT_EQ(bytes, parallel.csv_files.at(name)) << name << " differs";
  }
}

TEST(CoordinatorDeterminism, SingleExperimentIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const std::vector<testbed::GlobalPortId> slice_ports = {
      {testbed::SiteId{1}, testbed::PortId{4}},
      {testbed::SiteId{2}, testbed::PortId{5}},
  };
  auto run_single = [&] {
    World world(/*seed=*/31, wide_spec());
    world.warm_up_telemetry();
    Coordinator coordinator(world.env, multi_sample_config());
    return coordinator.run_single_experiment(slice_ports);
  };

  util::set_thread_count(0);
  const ProfileRun reference = run_single();
  util::set_thread_count(8);
  const ProfileRun parallel = run_single();
  expect_runs_identical(reference, parallel, "single-experiment");
}

}  // namespace
}  // namespace patchwork::core
