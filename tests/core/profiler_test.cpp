#include "core/profiler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "testing/env_fixture.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

ProfilerConfig quick_config() {
  ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 1;
  config.plan.runs_per_cycle = 1;
  config.plan.sample_interval = 5 * util::kMinute;
  config.plan.max_frames_per_sample = 300;
  config.crash_probability = 0.0;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;
  return config;
}

TEST(SiteProfiler, SetupGrantsInstancesAndMirrorSlots) {
  World world(1);
  world.warm_up_telemetry();
  SiteProfiler profiler(world.env, testbed::SiteId{0}, quick_config());
  const SetupResult setup = profiler.setup();
  ASSERT_TRUE(setup.ok);
  EXPECT_GT(setup.instances_granted, 0u);
  EXPECT_EQ(setup.backoffs_used, 0u);
  // Each instance's dedicated NIC is dual-port.
  EXPECT_EQ(profiler.monitored_port_slots(), 2 * setup.instances_granted);
  EXPECT_GT(profiler.storage_budget(), 0u);
}

TEST(SiteProfiler, SetupFailsOnTeachingSite) {
  World world(1);
  // Find the teaching site (no dedicated NICs).
  for (testbed::SiteId id : world.fed.site_ids()) {
    if (!world.fed.site(id).teaching_only()) continue;
    SiteProfiler profiler(world.env, id, quick_config());
    const SetupResult setup = profiler.setup();
    EXPECT_FALSE(setup.ok);
    EXPECT_EQ(setup.error, testbed::AllocError::kNoDedicatedNic);
    EXPECT_EQ(profiler.run(), RunOutcome::kFailed);
    return;
  }
  FAIL() << "no teaching site";
}

TEST(SiteProfiler, BackoffShrinksRequestUnderScarcity) {
  World world(2);
  world.warm_up_telemetry();
  // Pre-allocate all but one dedicated NIC to someone else, then ask for
  // more instances than can fit.
  testbed::Site& site = world.fed.site(testbed::SiteId{0});
  auto nics = site.available_nics(testbed::NicKind::kDedicatedConnectX);
  ASSERT_GE(nics.size(), 2u);
  for (std::size_t i = 0; i + 1 < nics.size(); ++i) {
    site.mutable_nic(nics[i]).allocated_to = testbed::SliceId{999};
  }
  ProfilerConfig config = quick_config();
  config.desired_instances = 3;
  config.max_backoffs = 5;
  SiteProfiler profiler(world.env, testbed::SiteId{0}, config);
  const SetupResult setup = profiler.setup();
  ASSERT_TRUE(setup.ok);
  EXPECT_EQ(setup.instances_granted, 1u);
  EXPECT_EQ(setup.backoffs_used, 2u);
  // Scaled-down completion counts as degraded, not success (Fig. 10).
  EXPECT_EQ(profiler.run(), RunOutcome::kDegraded);
}

TEST(SiteProfiler, RunProducesCapturesWithLogs) {
  World world(3);
  world.warm_up_telemetry();
  SiteProfiler profiler(world.env, testbed::SiteId{1}, quick_config());
  ASSERT_TRUE(profiler.setup().ok);
  const RunOutcome outcome = profiler.run();
  EXPECT_EQ(outcome, RunOutcome::kSuccess);
  auto captures = profiler.gather();
  ASSERT_FALSE(captures.empty());
  for (const auto& c : captures) {
    EXPECT_EQ(c.site, world.fed.site(testbed::SiteId{1}).name());
    EXPECT_EQ(c.duration, quick_config().plan.sample_duration);
    EXPECT_FALSE(c.pcap.empty());
  }
  // The instance log went along with the first capture.
  EXPECT_GT(captures.front().logs.records().size(), 0u);
  profiler.teardown();
}

TEST(SiteProfiler, MirrorsActiveDuringRunAndClearedByTeardown) {
  World world(4);
  world.warm_up_telemetry();
  SiteProfiler profiler(world.env, testbed::SiteId{2}, quick_config());
  ASSERT_TRUE(profiler.setup().ok);
  profiler.run();
  testbed::Site& site = world.fed.site(testbed::SiteId{2});
  EXPECT_FALSE(site.tor().mirrors().empty());
  profiler.teardown();
  EXPECT_TRUE(site.tor().mirrors().empty());
  // NICs returned.
  EXPECT_GT(site.count_available_nics(testbed::NicKind::kDedicatedConnectX),
            0u);
}

TEST(SiteProfiler, CrashProbabilityYieldsIncomplete) {
  World world(5);
  world.warm_up_telemetry();
  ProfilerConfig config = quick_config();
  config.crash_probability = 1.0;
  SiteProfiler profiler(world.env, testbed::SiteId{0}, config);
  ASSERT_TRUE(profiler.setup().ok);
  EXPECT_EQ(profiler.run(), RunOutcome::kIncomplete);
  EXPECT_GT(profiler.log().count_containing("watchdog"), 0u);
}

TEST(SiteProfiler, PortCyclingChangesMirroredPorts) {
  World world(6);
  world.warm_up_telemetry();
  ProfilerConfig config = quick_config();
  config.plan.cycles = 4;
  config.desired_instances = 1;
  SiteProfiler profiler(world.env, testbed::SiteId{1}, config);
  ASSERT_TRUE(profiler.setup().ok);
  profiler.run();
  // The log must show at least one retarget beyond the initial mirrors
  // (two slots, four cycles: cycling should move at least once).
  EXPECT_GE(profiler.log().count_containing("cycle: mirroring"), 3u);
  profiler.teardown();
}

TEST(SiteProfiler, SamplesRecordOfferedAndCaptured) {
  World world(7);
  world.warm_up_telemetry();
  SiteProfiler profiler(world.env, testbed::SiteId{3}, quick_config());
  ASSERT_TRUE(profiler.setup().ok);
  profiler.run();
  EXPECT_GT(profiler.log().count_containing("sample c"), 0u);
}

TEST(SiteProfiler, RenderSampleCommitEquivalentToRenderPending) {
  // The per-sample split's contract at the profiler level: rendering each
  // pending sample individually through render_sample (as the coordinator's
  // per-(site, sample) tasks do) and committing in order must produce the
  // same captures AND the same instance log as the all-at-once
  // render_pending path.
  ProfilerConfig config = quick_config();
  config.plan.samples_per_run = 3;  // Several pending samples per slot.

  World whole_world(11);
  whole_world.warm_up_telemetry();
  SiteProfiler whole(whole_world.env, testbed::SiteId{2}, config);
  ASSERT_TRUE(whole.setup().ok);
  whole.run();

  World split_world(11);
  split_world.warm_up_telemetry();
  SiteProfiler split(split_world.env, testbed::SiteId{2}, config);
  ASSERT_TRUE(split.setup().ok);
  split.run();

  ASSERT_GT(whole.pending_sample_count(), 1u);
  ASSERT_EQ(whole.pending_sample_count(), split.pending_sample_count());

  util::Rng whole_rng(12345);
  whole.render_pending(whole_rng);

  const util::Rng base(12345);
  std::vector<analysis::RawCapture> rendered;
  for (std::size_t k = 0; k < split.pending_sample_count(); ++k) {
    util::Rng sample_rng = base.split(k);
    rendered.push_back(split.render_sample(k, sample_rng));
  }
  split.commit_rendered(std::move(rendered));

  // Instance logs match record-for-record (commit replays the per-sample
  // summaries in sample order).
  const auto& la = whole.log().records();
  const auto& lb = split.log().records();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].time, lb[i].time) << "log " << i;
    EXPECT_EQ(la[i].message, lb[i].message) << "log " << i;
  }

  const std::vector<analysis::RawCapture> ca = whole.gather();
  const std::vector<analysis::RawCapture> cb = split.gather();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].port, cb[i].port) << "capture " << i;
    EXPECT_EQ(ca[i].start, cb[i].start) << "capture " << i;
    EXPECT_TRUE(ca[i].pcap == cb[i].pcap)
        << "capture " << i << " pcap bytes differ";
  }
}

}  // namespace
}  // namespace patchwork::core
