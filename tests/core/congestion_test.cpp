#include "core/congestion.hpp"

#include <gtest/gtest.h>

#include "testing/env_fixture.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

struct CongestionTest : ::testing::Test {
  CongestionTest() {
    // Pin a port's rates, then warm telemetry so MfLib can see them.
    auto& tor = world.fed.site(testbed::SiteId{0}).tor();
    tor.mutable_port(testbed::PortId{0}).set_rates(60e9, 50e9);
    for (util::Nanos t = 0; t < 20 * util::kMinute; t += 5 * util::kMinute) {
      world.fed.advance(5 * util::kMinute);
      world.mflib.poll_all(t + 5 * util::kMinute);
    }
  }
  World world{3};
};

TEST_F(CongestionTest, DetectsOversubscribedMirror) {
  // 60 + 50 = 110 Gbps mirrored into a 100 Gbps egress: dropping.
  CongestionDetector detector(world.mflib, 15 * util::kMinute);
  testbed::MirrorSession session{testbed::PortId{0},
                                 testbed::MirrorDirections::kBoth,
                                 testbed::PortId{5}};
  const CongestionVerdict verdict =
      detector.assess(testbed::SiteId{0}, session, 100e9);
  EXPECT_TRUE(verdict.likely_dropping);
  EXPECT_NEAR(verdict.offered_bps, 110e9, 5e9);
  EXPECT_NEAR(verdict.estimated_drop_fraction, 1.0 - 100.0 / 110.0, 0.02);
}

TEST_F(CongestionTest, SingleDirectionMirrorFitsFine) {
  CongestionDetector detector(world.mflib, 15 * util::kMinute);
  testbed::MirrorSession tx_only{testbed::PortId{0},
                                 testbed::MirrorDirections::kTxOnly,
                                 testbed::PortId{5}};
  const CongestionVerdict verdict =
      detector.assess(testbed::SiteId{0}, tx_only, 100e9);
  EXPECT_FALSE(verdict.likely_dropping);
  EXPECT_NEAR(verdict.offered_bps, 60e9, 3e9);
  EXPECT_DOUBLE_EQ(verdict.estimated_drop_fraction, 0.0);
}

TEST_F(CongestionTest, EstimatedDropsScaleWithWindow) {
  CongestionDetector detector(world.mflib, 15 * util::kMinute);
  testbed::MirrorSession session{testbed::PortId{0},
                                 testbed::MirrorDirections::kBoth,
                                 testbed::PortId{5}};
  const CongestionVerdict verdict =
      detector.assess(testbed::SiteId{0}, session, 100e9);
  const std::uint64_t d20 = verdict.estimated_drops(1e6, 20 * util::kSecond);
  const std::uint64_t d40 = verdict.estimated_drops(1e6, 40 * util::kSecond);
  EXPECT_NEAR(static_cast<double>(d40), 2.0 * static_cast<double>(d20),
              static_cast<double>(d20) * 0.01 + 1);
  EXPECT_GT(d20, 0u);
}

TEST(CongestionColdStart, NoTelemetryMeansNoVerdict) {
  World world{4};
  CongestionDetector detector(world.mflib, 15 * util::kMinute);
  testbed::MirrorSession session{testbed::PortId{0},
                                 testbed::MirrorDirections::kBoth,
                                 testbed::PortId{5}};
  const CongestionVerdict verdict =
      detector.assess(testbed::SiteId{0}, session, 100e9);
  EXPECT_FALSE(verdict.likely_dropping);  // Assume healthy without data.
}

}  // namespace
}  // namespace patchwork::core
