#include "core/scaler.hpp"

#include <gtest/gtest.h>

#include "core/profiler.hpp"
#include "testing/env_fixture.hpp"

namespace patchwork::core {
namespace {

TEST(TestbedPressure, CombinedTakesTheWorseSignal) {
  TestbedPressure p;
  p.nic_contention = 0.8;
  p.activity_level = 1.0;  // Normal activity maps to 0.25.
  EXPECT_DOUBLE_EQ(p.combined(), 0.8);
  p.nic_contention = 0.1;
  p.activity_level = 2.5;  // Deadline crunch maps to 1.0.
  EXPECT_DOUBLE_EQ(p.combined(), 1.0);
}

TEST(TestbedPressure, CombinedIsClamped) {
  TestbedPressure p;
  p.nic_contention = 0.0;
  p.activity_level = 0.0;
  EXPECT_DOUBLE_EQ(p.combined(), 0.0);
  p.nic_contention = 1.5;  // Garbage in, clamped out.
  EXPECT_DOUBLE_EQ(p.combined(), 1.0);
}

TEST(DynamicScaler, GrowsIntoIdleTestbed) {
  DynamicScaler scaler;
  TestbedPressure idle;
  idle.nic_contention = 0.05;
  idle.activity_level = 0.6;
  EXPECT_EQ(scaler.target_instances(2, idle, 3), 3u);
}

TEST(DynamicScaler, NeverGrowsWithoutFreeNics) {
  DynamicScaler scaler;
  TestbedPressure idle;
  idle.nic_contention = 0.0;
  idle.activity_level = 0.5;
  EXPECT_EQ(scaler.target_instances(2, idle, 0), 2u);
}

TEST(DynamicScaler, ShedsUnderContention) {
  DynamicScaler scaler;
  TestbedPressure hot;
  hot.nic_contention = 0.9;
  EXPECT_EQ(scaler.target_instances(3, hot, 0), 2u);
  // Gradual: one instance per decision, never below the minimum.
  EXPECT_EQ(scaler.target_instances(1, hot, 0), 1u);
}

TEST(DynamicScaler, NiceFactorShiftsThresholds) {
  DynamicScaler::Policy polite;
  polite.nice = 0.9;
  DynamicScaler::Policy greedy;
  greedy.nice = 0.0;
  const DynamicScaler p(polite), g(greedy);
  EXPECT_LT(p.grow_threshold(), g.grow_threshold());
  EXPECT_LT(p.shed_threshold(), g.shed_threshold());
  // Moderate pressure: the greedy profiler grows, the polite one sheds.
  TestbedPressure moderate;
  moderate.nic_contention = 0.4;
  EXPECT_EQ(g.target_instances(2, moderate, 2), 3u);
  EXPECT_EQ(p.target_instances(2, moderate, 2), 1u);
}

TEST(DynamicScaler, RespectsBounds) {
  DynamicScaler::Policy policy;
  policy.max_instances = 3;
  policy.min_instances = 2;
  DynamicScaler scaler(policy);
  TestbedPressure idle;
  EXPECT_EQ(scaler.target_instances(3, idle, 5), 3u);  // At max.
  TestbedPressure hot;
  hot.nic_contention = 1.0;
  EXPECT_EQ(scaler.target_instances(2, hot, 0), 2u);  // At min.
}

// --- Integration with SiteProfiler ----------------------------------------

using patchwork::testing::World;

ProfilerConfig scaling_config() {
  ProfilerConfig config;
  config.plan.cycles = 4;
  config.plan.samples_per_run = 1;
  config.plan.max_frames_per_sample = 100;
  config.crash_probability = 0.0;
  config.desired_instances = 1;  // Small baseline; room to grow.
  config.dynamic_scaling = true;
  config.scaling.nice = 0.3;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;
  config.allocator.backend_failure_rate = 0.0;
  return config;
}

TEST(ScalingProfiler, GrowsWhenTestbedIsIdle) {
  World world(21);
  world.warm_up_telemetry();
  ProfilerConfig config = scaling_config();
  // Make the activity signal read as idle regardless of traffic.
  config.nominal_testbed_bps = 1e18;
  SiteProfiler profiler(world.env, testbed::SiteId{0}, config);
  ASSERT_TRUE(profiler.setup().ok);
  EXPECT_EQ(profiler.current_instances(), 1u);
  const RunOutcome outcome = profiler.run();
  EXPECT_EQ(outcome, RunOutcome::kSuccess);
  EXPECT_GT(profiler.scale_ups(), 0u);
  EXPECT_GT(profiler.current_instances(), 1u);
  EXPECT_GT(profiler.monitored_port_slots(), 2u);
  profiler.teardown();
  // Everything returned, including runtime extras.
  EXPECT_GT(world.fed.site(testbed::SiteId{0})
                .count_available_nics(testbed::NicKind::kDedicatedConnectX),
            0u);
}

TEST(ScalingProfiler, ShedsExtrasUnderNicContention) {
  World world(22);
  world.warm_up_telemetry();
  testbed::Site& site = world.fed.site(testbed::SiteId{1});
  ProfilerConfig config = scaling_config();
  config.nominal_testbed_bps = 1e18;
  config.plan.cycles = 6;
  SiteProfiler profiler(world.env, testbed::SiteId{1}, config);
  ASSERT_TRUE(profiler.setup().ok);
  // Let it grow for two cycles, then another user grabs every free NIC.
  // We emulate by running in two phases.
  // Phase 1: grow.
  ProfilerConfig phase1 = config;
  (void)phase1;
  profiler.run();
  const std::uint32_t grown = profiler.current_instances();
  EXPECT_GT(grown, 1u);
  // Phase 2: hold all remaining NICs as a rival slice and re-run a fresh
  // profiler round (rescale() reacts to contention during cycles).
  for (testbed::NicId nic :
       site.available_nics(testbed::NicKind::kDedicatedConnectX)) {
    site.mutable_nic(nic).allocated_to = testbed::SliceId{31337};
  }
  SiteProfiler crowded(world.env, testbed::SiteId{1}, config);
  // All NICs are held (by the rival and the first profiler): pressure
  // reads high for the new instance.
  const TestbedPressure pressure = crowded.observe_pressure();
  EXPECT_GT(pressure.nic_contention, 0.9);
  profiler.teardown();
}

TEST(ScalingProfiler, DisabledByDefault) {
  World world(23);
  world.warm_up_telemetry();
  ProfilerConfig config = scaling_config();
  config.dynamic_scaling = false;
  SiteProfiler profiler(world.env, testbed::SiteId{2}, config);
  ASSERT_TRUE(profiler.setup().ok);
  profiler.run();
  EXPECT_EQ(profiler.scale_ups(), 0u);
  EXPECT_EQ(profiler.current_instances(), 1u);
  profiler.teardown();
}

}  // namespace
}  // namespace patchwork::core
