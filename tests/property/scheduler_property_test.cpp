// Property test: the mirror scheduler's invariants hold under random
// workloads of submissions, cancellations, and clock ticks.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/mirror_scheduler.hpp"
#include "util/rng.hpp"

namespace patchwork::core {
namespace {

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, InvariantsHoldUnderRandomWorkload) {
  util::Rng rng(GetParam());
  std::vector<testbed::SwitchPort> ports;
  for (int i = 0; i < 16; ++i) {
    ports.emplace_back(testbed::PortKind::kDownlink, 100e9);
  }
  testbed::ToRSwitch tor(std::move(ports));
  MirrorScheduler::Policy policy;
  policy.quantum = (1 + rng.uniform_u64(0, 9)) * util::kMinute;
  MirrorScheduler scheduler(
      tor, {testbed::PortId{14}, testbed::PortId{15}}, policy);

  const char* users[] = {"a", "b", "c"};
  std::map<MirrorRequestId, util::Nanos> requested;
  std::map<MirrorRequestId, util::Nanos> last_remaining;
  std::vector<MirrorRequestId> live;
  util::Nanos now = 0;

  for (int step = 0; step < 400; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.35) {
      MirrorRequest request;
      request.user = users[rng.uniform_u64(0, 2)];
      request.source =
          testbed::PortId{static_cast<std::uint32_t>(rng.uniform_u64(0, 13))};
      request.duration = (1 + rng.uniform_u64(0, 29)) * util::kMinute;
      const MirrorRequestId id = scheduler.submit(request);
      requested[id] = request.duration;
      last_remaining[id] = request.duration;
      live.push_back(id);
    } else if (roll < 0.45 && !live.empty()) {
      const std::size_t idx = rng.uniform_u64(0, live.size() - 1);
      scheduler.cancel(live[idx], now);
      last_remaining.erase(live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    } else {
      now += (1 + rng.uniform_u64(0, 7)) * util::kMinute;
      scheduler.tick(now);
    }

    // Invariant 1: active leases occupy distinct sources & destinations.
    std::set<std::uint32_t> sources, destinations;
    for (const MirrorLease& lease : scheduler.active()) {
      EXPECT_TRUE(sources.insert(lease.source.value).second);
      EXPECT_TRUE(destinations.insert(lease.destination.value).second);
      EXPECT_GT(lease.expires, lease.started);
      EXPECT_LE(lease.expires - lease.started, policy.quantum);
    }
    // Invariant 2: hardware mirrors exactly mirror the active leases.
    EXPECT_EQ(tor.mirrors().size(), scheduler.active().size());
    for (const MirrorLease& lease : scheduler.active()) {
      const auto session = tor.mirror_for_source(lease.source);
      ASSERT_TRUE(session.has_value());
      EXPECT_EQ(session->destination, lease.destination);
    }
    // Invariant 3: remaining time never grows and never exceeds the ask.
    for (auto& [id, prev] : last_remaining) {
      const util::Nanos rem = scheduler.remaining(id);
      EXPECT_LE(rem, prev) << "request " << id;
      EXPECT_LE(rem, requested[id]);
      prev = rem;
    }
  }

  // Drain: with no cancellations and enough ticks, everything completes
  // and the hardware is clean. Tick at the quantum so every slot advances
  // one lease per tick.
  for (int i = 0; i < 4000 && (scheduler.pending_count() > 0 ||
                               !scheduler.active().empty());
       ++i) {
    now += policy.quantum;
    scheduler.tick(now);
  }
  EXPECT_EQ(scheduler.pending_count(), 0u);
  EXPECT_TRUE(scheduler.active().empty());
  EXPECT_TRUE(tor.mirrors().empty());
  for (const auto& [id, duration] : requested) {
    EXPECT_EQ(scheduler.remaining(id), 0u);
  }
  // Service accounting adds up to no more than was requested in total.
  util::Nanos served_total = 0;
  for (const auto& [user, t] : scheduler.service_time()) served_total += t;
  util::Nanos requested_total = 0;
  for (const auto& [id, d] : requested) requested_total += d;
  EXPECT_LE(served_total, requested_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(1ull, 17ull, 404ull, 90210ull));

}  // namespace
}  // namespace patchwork::core
