// Property tests for the dissector: it must never misbehave on arbitrary
// bytes (captures contain whatever crossed the wire) and must degrade
// gracefully — never inventing structure — under any truncation.
#include <gtest/gtest.h>

#include "net/parser.hpp"
#include "traffic/flowgen.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"

namespace patchwork::net {
namespace {

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, ArbitraryBytesNeverBreakInvariants) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = rng.uniform_u64(0, 512);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bits());
    const std::size_t wire = len + rng.uniform_u64(0, 64);
    const ParsedFrame parsed = parse_bytes(bytes, wire, 0);

    // Layers lie within the captured bytes, in order, without overlap.
    std::size_t cursor = 0;
    for (const LayerInfo& layer : parsed.layers) {
      EXPECT_GE(layer.offset, cursor);
      EXPECT_LE(layer.offset + layer.length, bytes.size());
      cursor = layer.offset + layer.length;
    }
    EXPECT_LE(parsed.header_depth(), parsed.layers.size());
    EXPECT_EQ(parsed.captured_length, bytes.size());
    EXPECT_EQ(parsed.wire_length, wire);
  }
}

TEST_P(ParserFuzz, GeneratedTrafficNeverMalformed) {
  util::Rng rng(GetParam());
  const auto profiles = traffic::make_site_profiles(rng, 4);
  for (int trial = 0; trial < 150; ++trial) {
    const auto& profile = profiles[trial % profiles.size()];
    const traffic::FlowSpec flow = traffic::draw_flow(rng, profile);
    const Frame frame = traffic::make_data_frame(flow, 0);
    const ParsedFrame parsed = parse_frame(frame);
    EXPECT_FALSE(parsed.has(Protocol::kMalformed)) << parsed.stack_string();
    EXPECT_FALSE(parsed.has(Protocol::kTruncated)) << parsed.stack_string();
    EXPECT_GE(parsed.header_depth(), 2u);
  }
}

TEST_P(ParserFuzz, TruncationYieldsPrefixOfFullParse) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  const auto profiles = traffic::make_site_profiles(rng, 4);
  for (int trial = 0; trial < 60; ++trial) {
    const auto& profile = profiles[trial % profiles.size()];
    const traffic::FlowSpec flow = traffic::draw_flow(rng, profile);
    const Frame full = traffic::make_data_frame(flow, 0);
    const ParsedFrame reference = parse_frame(full);
    for (std::size_t snaplen : {32ul, 64ul, 96ul, 200ul}) {
      const ParsedFrame cut = parse_frame(full.truncate(snaplen));
      // Every fully-present layer of the truncated parse must agree with
      // the reference parse at the same position.
      for (std::size_t i = 0; i + 1 < cut.layers.size(); ++i) {
        ASSERT_LT(i, reference.layers.size());
        EXPECT_EQ(cut.layers[i].protocol, reference.layers[i].protocol)
            << "snaplen " << snaplen << ": " << cut.stack_string() << " vs "
            << reference.stack_string();
        EXPECT_EQ(cut.layers[i].offset, reference.layers[i].offset);
      }
      // The dissector never labels snaplen damage as malformed.
      EXPECT_FALSE(cut.has(Protocol::kMalformed))
          << "snaplen " << snaplen << ": " << cut.stack_string();
    }
  }
}

TEST_P(ParserFuzz, TagExtractionMatchesFlowSpec) {
  util::Rng rng(GetParam() ^ 0x1234);
  const auto profiles = traffic::make_site_profiles(rng, 4);
  for (int trial = 0; trial < 150; ++trial) {
    const auto& profile = profiles[trial % profiles.size()];
    const traffic::FlowSpec flow = traffic::draw_flow(rng, profile);
    const ParsedFrame parsed =
        parse_frame(traffic::make_data_frame(flow, 0));
    if (flow.app == traffic::FlowApp::kArp) continue;  // VLAN-only path.
    EXPECT_EQ(parsed.mpls_labels, flow.mpls_labels);
    if (flow.vlan_id) {
      ASSERT_FALSE(parsed.vlan_ids.empty());
      EXPECT_EQ(parsed.vlan_ids.front(), *flow.vlan_id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1ull, 42ull, 777ull, 31337ull,
                                           0xdeadbeefull));

}  // namespace
}  // namespace patchwork::net
