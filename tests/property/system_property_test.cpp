// Cross-module property tests: pcap round-trips, flow-key symmetry,
// filter algebra, anonymizer determinism, and allocator conservation —
// each swept over several RNG seeds.
#include <gtest/gtest.h>

#include "analysis/acap.hpp"
#include "analysis/digest.hpp"
#include "capture/anonymize.hpp"
#include "capture/filter.hpp"
#include "pcap/pcap.hpp"
#include "testbed/allocator.hpp"
#include "testbed/federation.hpp"
#include "traffic/flowgen.hpp"
#include "util/rng.hpp"

namespace patchwork {
namespace {

class SystemProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<net::Frame> random_frames(util::Rng& rng, std::size_t n) {
  const auto profiles = traffic::make_site_profiles(rng, 3);
  std::vector<net::Frame> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& profile = profiles[i % profiles.size()];
    traffic::FlowSpec flow = traffic::draw_flow(rng, profile);
    net::Frame f = traffic::make_data_frame(
        flow, rng.uniform_u64(0, 3600 * util::kSecond));
    out.push_back(std::move(f));
  }
  return out;
}

TEST_P(SystemProperty, PcapRoundTripIsLossless) {
  util::Rng rng(GetParam());
  const auto frames = random_frames(rng, 100);
  pcap::PcapWriter writer(65535, pcap::TimestampResolution::kNano);
  for (const net::Frame& f : frames) writer.write(f);
  auto reader = pcap::PcapReader::open(writer.take_buffer());
  ASSERT_TRUE(reader.has_value());
  for (const net::Frame& expected : frames) {
    const auto got = reader->next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->wire_length(), expected.wire_length());
    EXPECT_EQ(got->timestamp(), expected.timestamp());
    ASSERT_EQ(got->captured_length(), expected.captured_length());
    EXPECT_TRUE(std::equal(got->bytes().begin(), got->bytes().end(),
                           expected.bytes().begin()));
  }
  EXPECT_FALSE(reader->next().has_value());
  EXPECT_EQ(reader->bad_records(), 0u);
}

TEST_P(SystemProperty, FlowKeyIsDirectionSymmetric) {
  util::Rng rng(GetParam());
  const auto profiles = traffic::make_site_profiles(rng, 3);
  for (int i = 0; i < 100; ++i) {
    traffic::FlowSpec flow = traffic::draw_flow(rng, profiles[0]);
    if (!traffic::app_is_tcp(flow.app) || flow.ipv6) continue;
    const auto fwd =
        analysis::flow_key_of(net::parse_frame(traffic::make_data_frame(flow, 0)));
    const auto rev =
        analysis::flow_key_of(net::parse_frame(traffic::make_ack_frame(flow, 0)));
    EXPECT_EQ(fwd, rev);
    EXPECT_EQ(analysis::FlowKeyHash{}(fwd), analysis::FlowKeyHash{}(rev));
  }
}

TEST_P(SystemProperty, FilterDeMorgan) {
  util::Rng rng(GetParam());
  auto get = [](const char* text) {
    auto r = capture::Filter::compile(text);
    EXPECT_TRUE(std::holds_alternative<capture::Filter>(r)) << text;
    return std::get<capture::Filter>(r);
  };
  const capture::Filter lhs = get("not (tcp or jumbo)");
  const capture::Filter rhs = get("not tcp and not jumbo");
  const capture::Filter lhs2 = get("not (vlan and ip6)");
  const capture::Filter rhs2 = get("not vlan or not ip6");
  for (const net::Frame& f : random_frames(rng, 120)) {
    const net::ParsedFrame parsed = net::parse_frame(f);
    EXPECT_EQ(lhs.matches(parsed), rhs.matches(parsed));
    EXPECT_EQ(lhs2.matches(parsed), rhs2.matches(parsed));
  }
}

TEST_P(SystemProperty, FilterComplementPartitionsTraffic) {
  util::Rng rng(GetParam());
  auto tcp = std::get<capture::Filter>(capture::Filter::compile("tcp"));
  auto not_tcp =
      std::get<capture::Filter>(capture::Filter::compile("not tcp"));
  for (const net::Frame& f : random_frames(rng, 120)) {
    const net::ParsedFrame parsed = net::parse_frame(f);
    EXPECT_NE(tcp.matches(parsed), not_tcp.matches(parsed));
  }
}

TEST_P(SystemProperty, AnonymizerIsDeterministicAndStructurePreserving) {
  util::Rng rng(GetParam());
  const capture::Anonymizer anon(0x5eed);
  for (const net::Frame& f : random_frames(rng, 80)) {
    const net::Frame a = anon.scrub_frame(f);
    const net::Frame b = anon.scrub_frame(f);
    EXPECT_TRUE(std::equal(a.bytes().begin(), a.bytes().end(),
                           b.bytes().begin()));
    // Structure (the abstract header stack) is invariant under scrubbing.
    EXPECT_EQ(net::parse_frame(a).stack_string(),
              net::parse_frame(f).stack_string());
    EXPECT_EQ(a.wire_length(), f.wire_length());
  }
}

TEST_P(SystemProperty, AllocatorConservesResources) {
  util::Rng rng(GetParam());
  testbed::Federation fed = testbed::make_fabric_like_federation(rng);
  testbed::Site& site = fed.site(testbed::SiteId{0});
  testbed::Allocator::Tuning tuning;
  tuning.backend_failure_rate = 0.1;
  testbed::Allocator alloc(site, rng, tuning);

  const auto nics_start =
      site.count_available_nics(testbed::NicKind::kDedicatedConnectX);
  const auto storage_start = site.total_free_storage();

  std::vector<testbed::SliceGrant> held;
  for (int op = 0; op < 200; ++op) {
    if (!held.empty() && rng.chance(0.45)) {
      const std::size_t idx = rng.uniform_u64(0, held.size() - 1);
      alloc.release(held[idx]);
      held.erase(held.begin() + static_cast<long>(idx));
    } else {
      testbed::SliceRequest req;
      req.site = testbed::SiteId{0};
      req.vms.assign(rng.uniform_u64(1, 3), testbed::VmRequest{});
      auto result = alloc.allocate(req);
      if (result.ok()) held.push_back(std::move(*result.grant));
    }
    // Invariants hold at every step: nothing is double-allocated and free
    // counts never exceed the initial inventory.
    EXPECT_LE(site.count_available_nics(testbed::NicKind::kDedicatedConnectX),
              nics_start);
    EXPECT_LE(site.total_free_storage(), storage_start);
    for (const testbed::WorkerNode& w : site.workers()) {
      EXPECT_LE(w.cores_free, w.cores_total);
      EXPECT_LE(w.ram_free, w.ram_total);
      EXPECT_LE(w.storage_free, w.storage_total);
    }
  }
  for (const auto& grant : held) alloc.release(grant);
  EXPECT_EQ(site.count_available_nics(testbed::NicKind::kDedicatedConnectX),
            nics_start);
  EXPECT_EQ(site.total_free_storage(), storage_start);
}

TEST_P(SystemProperty, DigestCountsMatchCaptureCounts) {
  util::Rng rng(GetParam());
  const auto frames = random_frames(rng, 150);
  pcap::PcapWriter writer(200);
  for (const net::Frame& f : frames) writer.write(f);
  analysis::RawCapture raw;
  raw.site = "S0";
  raw.pcap = writer.take_buffer();
  analysis::DigestStats stats;
  const analysis::AcapFile file = analysis::digest(raw, &stats);
  EXPECT_EQ(file.records.size(), frames.size());
  EXPECT_EQ(stats.frames, frames.size());
  std::uint64_t wire = 0, wire_expected = 0;
  for (const auto& r : file.records) wire += r.wire_length;
  for (const auto& f : frames) wire_expected += f.wire_length();
  EXPECT_EQ(wire, wire_expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemProperty,
                         ::testing::Values(3ull, 99ull, 2024ull, 0xc0ffeeull,
                                           918273645ull));

}  // namespace
}  // namespace patchwork
