#include "net/headers.hpp"

#include <gtest/gtest.h>

namespace patchwork::net {
namespace {

template <typename H>
H round_trip(const H& header) {
  Bytes buf;
  header.encode(buf);
  EXPECT_EQ(buf.size(), H::kSize);
  auto decoded = H::decode(buf, 0);
  EXPECT_TRUE(decoded.has_value());
  return *decoded;
}

TEST(EthernetHeader, RoundTrip) {
  EthernetHeader h;
  h.src = MacAddress::from_id(1);
  h.dst = MacAddress::from_id(2);
  h.ethertype = kEtherTypeIpv4;
  const EthernetHeader d = round_trip(h);
  EXPECT_EQ(d.src, h.src);
  EXPECT_EQ(d.dst, h.dst);
  EXPECT_EQ(d.ethertype, kEtherTypeIpv4);
}

TEST(EthernetHeader, DecodeRejectsShortBuffer) {
  Bytes buf(13, 0);
  EXPECT_FALSE(EthernetHeader::decode(buf, 0).has_value());
}

TEST(VlanTag, RoundTripAllFields) {
  VlanTag t;
  t.pcp = 5;
  t.dei = true;
  t.vid = 0xabc;
  t.ethertype = kEtherTypeIpv6;
  const VlanTag d = round_trip(t);
  EXPECT_EQ(d.pcp, 5);
  EXPECT_TRUE(d.dei);
  EXPECT_EQ(d.vid, 0xabc);
  EXPECT_EQ(d.ethertype, kEtherTypeIpv6);
}

TEST(MplsLabel, RoundTripAndBottomOfStack) {
  MplsLabel l;
  l.label = 0xfffff;  // Max 20-bit value.
  l.tc = 3;
  l.bottom_of_stack = true;
  l.ttl = 12;
  const MplsLabel d = round_trip(l);
  EXPECT_EQ(d.label, 0xfffffu);
  EXPECT_EQ(d.tc, 3);
  EXPECT_TRUE(d.bottom_of_stack);
  EXPECT_EQ(d.ttl, 12);
}

TEST(PseudoWireControlWord, FirstNibbleZero) {
  PseudoWireControlWord cw;
  cw.sequence = 77;
  Bytes buf;
  cw.encode(buf);
  EXPECT_EQ(buf[0] & 0xf0, 0);
  auto d = PseudoWireControlWord::decode(buf, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sequence, 77);
}

TEST(PseudoWireControlWord, RejectsIpLikeNibble) {
  Bytes buf = {0x45, 0x00, 0x00, 0x00};  // IPv4's first byte.
  EXPECT_FALSE(PseudoWireControlWord::decode(buf, 0).has_value());
}

TEST(ArpHeader, RoundTrip) {
  ArpHeader h;
  h.opcode = 2;
  h.sender_mac = MacAddress::from_id(9);
  h.sender_ip = Ipv4Address::from_octets(10, 0, 0, 9);
  h.target_ip = Ipv4Address::from_octets(10, 0, 0, 1);
  const ArpHeader d = round_trip(h);
  EXPECT_EQ(d.opcode, 2);
  EXPECT_EQ(d.sender_mac, h.sender_mac);
  EXPECT_EQ(d.sender_ip, h.sender_ip);
  EXPECT_EQ(d.target_ip, h.target_ip);
}

TEST(Ipv4Header, RoundTripAndChecksumVerifies) {
  Ipv4Header h;
  h.src = Ipv4Address::from_octets(10, 1, 1, 1);
  h.dst = Ipv4Address::from_octets(10, 2, 2, 2);
  h.protocol = kIpProtoTcp;
  h.total_length = 1500;
  h.ttl = 17;
  Bytes buf;
  h.encode(buf);
  auto d = Ipv4Header::decode(buf, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src, h.src);
  EXPECT_EQ(d->dst, h.dst);
  EXPECT_EQ(d->total_length, 1500);
  EXPECT_EQ(d->ttl, 17);
  EXPECT_NE(d->checksum, 0);  // encode() filled it in.
}

TEST(Ipv4Header, DecodeRejectsWrongVersion) {
  Ipv4Header h;
  Bytes buf;
  h.encode(buf);
  buf[0] = 0x65;  // Version 6.
  EXPECT_FALSE(Ipv4Header::decode(buf, 0).has_value());
}

TEST(Ipv6Header, RoundTrip) {
  Ipv6Header h;
  h.traffic_class = 7;
  h.flow_label = 0xabcde;
  h.payload_length = 512;
  h.next_header = kIpProtoUdp;
  h.src = Ipv6Address::from_words({0xfd00, 1, 2, 3, 4, 5, 6, 7});
  h.dst = Ipv6Address::from_words({0xfd00, 7, 6, 5, 4, 3, 2, 1});
  const Ipv6Header d = round_trip(h);
  EXPECT_EQ(d.traffic_class, 7);
  EXPECT_EQ(d.flow_label, 0xabcdeu);
  EXPECT_EQ(d.payload_length, 512);
  EXPECT_EQ(d.src, h.src);
  EXPECT_EQ(d.dst, h.dst);
}

TEST(TcpHeader, RoundTripFlags) {
  TcpHeader h;
  h.src_port = 49152;
  h.dst_port = 443;
  h.seq = 0xdeadbeef;
  h.ack = 42;
  h.flags = tcp_flags::kSyn | tcp_flags::kAck;
  h.window = 1234;
  const TcpHeader d = round_trip(h);
  EXPECT_EQ(d.src_port, 49152);
  EXPECT_EQ(d.dst_port, 443);
  EXPECT_EQ(d.seq, 0xdeadbeefu);
  EXPECT_EQ(d.flags, tcp_flags::kSyn | tcp_flags::kAck);
  EXPECT_EQ(d.window, 1234);
}

TEST(UdpHeader, RoundTrip) {
  UdpHeader h;
  h.src_port = 5353;
  h.dst_port = 53;
  h.length = 96;
  const UdpHeader d = round_trip(h);
  EXPECT_EQ(d.src_port, 5353);
  EXPECT_EQ(d.dst_port, 53);
  EXPECT_EQ(d.length, 96);
}

TEST(DnsHeader, ResponseFlag) {
  DnsHeader h;
  h.id = 0x1234;
  h.is_response = true;
  h.answer_count = 3;
  const DnsHeader d = round_trip(h);
  EXPECT_EQ(d.id, 0x1234);
  EXPECT_TRUE(d.is_response);
  EXPECT_EQ(d.answer_count, 3);
}

TEST(TlsRecordHeader, AcceptsOnlyPlausibleRecords) {
  TlsRecordHeader h;
  h.content_type = 22;
  h.length = 100;
  const TlsRecordHeader d = round_trip(h);
  EXPECT_EQ(d.content_type, 22);
  EXPECT_EQ(d.length, 100);
  // Random payload bytes must not parse as TLS.
  Bytes junk = {'0', '1', '2', '3', '4'};
  EXPECT_FALSE(TlsRecordHeader::decode(junk, 0).has_value());
}

TEST(NtpHeader, VersionValidation) {
  NtpHeader h;
  const NtpHeader d = round_trip(h);
  EXPECT_EQ(d.leap_version_mode, 0x23);
  Bytes junk(NtpHeader::kSize, 0);  // Version 0: invalid.
  EXPECT_FALSE(NtpHeader::decode(junk, 0).has_value());
}

TEST(VxlanHeader, RoundTripVni) {
  VxlanHeader h;
  h.vni = 0x123456;
  const VxlanHeader d = round_trip(h);
  EXPECT_EQ(d.vni, 0x123456u);
}

TEST(SshBanner, DetectedAndEncoded) {
  Bytes buf;
  encode_ssh_banner(buf);
  EXPECT_TRUE(looks_like_ssh_banner(buf, 0));
  Bytes other = {'h', 'i'};
  EXPECT_FALSE(looks_like_ssh_banner(other, 0));
}

TEST(Http, DetectsCommonMethods) {
  Bytes buf;
  encode_http_request(buf);
  EXPECT_TRUE(looks_like_http(buf, 0));
  Bytes junk = {'x', 'y', 'z', 'w', 'q'};
  EXPECT_FALSE(looks_like_http(junk, 0));
}

}  // namespace
}  // namespace patchwork::net
