#include "net/frame_builder.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "net/parser.hpp"

namespace patchwork::net {
namespace {

const MacAddress kSrc = MacAddress::from_id(1);
const MacAddress kDst = MacAddress::from_id(2);
const Ipv4Address kA = Ipv4Address::from_octets(10, 0, 0, 1);
const Ipv4Address kB = Ipv4Address::from_octets(10, 0, 0, 2);

TEST(FrameBuilder, MinimalEthernetIpv4Tcp) {
  const Frame f =
      FrameBuilder().ethernet(kSrc, kDst).ipv4(kA, kB).tcp(1000, 2000).build();
  EXPECT_EQ(f.wire_length(), 14u + 20u + 20u);
  // EtherType chained automatically.
  EXPECT_EQ(f.bytes()[12], 0x08);
  EXPECT_EQ(f.bytes()[13], 0x00);
}

TEST(FrameBuilder, Ipv4LengthsAreResolved) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(1, 2)
                      .payload(100)
                      .build();
  auto ip = Ipv4Header::decode(f.bytes(), 14);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->total_length, 20 + 8 + 100);
  EXPECT_EQ(ip->protocol, kIpProtoUdp);
  auto udp = UdpHeader::decode(f.bytes(), 34);
  ASSERT_TRUE(udp.has_value());
  EXPECT_EQ(udp->length, 8 + 100);
}

TEST(FrameBuilder, MplsBottomOfStackOnlyOnLast) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .mpls(100)
                      .mpls(200)
                      .ipv4(kA, kB)
                      .tcp(1, 2)
                      .build();
  auto l1 = MplsLabel::decode(f.bytes(), 14);
  auto l2 = MplsLabel::decode(f.bytes(), 18);
  ASSERT_TRUE(l1 && l2);
  EXPECT_FALSE(l1->bottom_of_stack);
  EXPECT_TRUE(l2->bottom_of_stack);
  EXPECT_EQ(l1->label, 100u);
  EXPECT_EQ(l2->label, 200u);
}

TEST(FrameBuilder, PadToExtendsFrame) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .tcp(1, 2)
                      .pad_to(1514)
                      .build();
  EXPECT_EQ(f.wire_length(), 1514u);
  // The IPv4 total length must include the padding payload.
  auto ip = Ipv4Header::decode(f.bytes(), 14);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->total_length, 1514 - 14);
}

TEST(FrameBuilder, PadToIsNoOpWhenAlreadyLonger) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(1, 2)
                      .payload(200)
                      .pad_to(64)
                      .build();
  EXPECT_EQ(f.wire_length(), 14u + 20u + 8u + 200u);
}

TEST(FrameBuilder, PaperEncapsulationExample) {
  // "Ethernet / VLAN / MPLS / MPLS / PseudoWire / Ethernet / IPv4 / TCP /
  // TLS" — the paper's Section 8.2 example stack.
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .vlan(100)
                      .mpls(16001)
                      .mpls(16002)
                      .pseudowire()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .tcp(49152, 443)
                      .tls()
                      .payload(64)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_EQ(parsed.stack_string(),
            "eth/vlan/mpls/mpls/pw/eth/ipv4/tcp/tls/data");
  EXPECT_EQ(parsed.header_depth(), 9u);
}

TEST(FrameBuilder, BuilderIsReusable) {
  FrameBuilder b;
  b.ethernet(kSrc, kDst).ipv4(kA, kB).udp(1, 2).pad_to(100);
  const Frame f1 = b.build(10);
  const Frame f2 = b.build(20);
  EXPECT_EQ(f1.wire_length(), f2.wire_length());
  EXPECT_EQ(f1.timestamp(), 10u);
  EXPECT_EQ(f2.timestamp(), 20u);
  EXPECT_TRUE(std::equal(f1.bytes().begin(), f1.bytes().end(),
                         f2.bytes().begin()));
}

TEST(FrameBuilder, SshBannerInPayload) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .tcp(50000, 22)
                      .ssh_banner()
                      .pad_to(128)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_TRUE(parsed.has(Protocol::kSsh));
  EXPECT_EQ(f.wire_length(), 128u);
}

TEST(FrameBuilder, VxlanCarriesInnerEthernet) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(40000, 4789)
                      .vxlan(77)
                      .ethernet(kDst, kSrc)
                      .ipv4(kB, kA)
                      .tcp(1, 2)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_EQ(parsed.count(Protocol::kEthernet), 2u);
  EXPECT_TRUE(parsed.has(Protocol::kVxlan));
  ASSERT_TRUE(parsed.vxlan_vni.has_value());
  EXPECT_EQ(*parsed.vxlan_vni, 77u);
}

TEST(FrameBuilder, TruncateKeepsWireLength) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(1, 2)
                      .pad_to(1514)
                      .build();
  const Frame cut = f.truncate(200);
  EXPECT_EQ(cut.captured_length(), 200u);
  EXPECT_EQ(cut.wire_length(), 1514u);
  EXPECT_TRUE(cut.truncated());
  EXPECT_FALSE(f.truncated());
}

TEST(FrameBuilder, TruncateZeroKeepsEverything) {
  const Frame f =
      FrameBuilder().ethernet(kSrc, kDst).ipv4(kA, kB).udp(1, 2).build();
  const Frame same = f.truncate(0);
  EXPECT_EQ(same.captured_length(), f.captured_length());
}

TEST(FrameBuilder, BuildIntoMatchesBuildForRepresentativeStacks) {
  // Every encapsulation shape the generator emits; build() and the arena
  // path must serialize identical bytes, including the resolved chaining
  // and pad growth.
  std::vector<FrameBuilder> builders(5);
  builders[0].ethernet(kSrc, kDst).vlan(100).mpls(16001).mpls(16002)
      .pseudowire().ethernet(kDst, kSrc).ipv4(kA, kB)
      .tcp(49152, 443, tcp_flags::kAck | tcp_flags::kPsh).tls()
      .pad_to(1514);
  builders[1].ethernet(kSrc, kDst).arp(kSrc, kA, kB).pad_to(64);
  builders[2].ethernet(kSrc, kDst).ipv4(kA, kB).udp(1234, 53).dns(7)
      .payload(24).pad_to(140);
  builders[3].ethernet(kSrc, kDst).ipv4(kA, kB).tcp(1, 22).ssh_banner()
      .pad_to(200);
  builders[4].ethernet(kSrc, kDst).ipv4(kA, kB).tcp(1, 80).http_request();

  FrameStore store;
  for (std::size_t i = 0; i < builders.size(); ++i) {
    builders[i].build_into(store, 100 * static_cast<util::Nanos>(i));
  }
  ASSERT_EQ(store.size(), builders.size());
  for (std::size_t i = 0; i < builders.size(); ++i) {
    const Frame expected = builders[i].build(100 * static_cast<util::Nanos>(i));
    const FrameView view = store.view(i);
    EXPECT_EQ(view.timestamp, expected.timestamp()) << "stack " << i;
    EXPECT_EQ(view.wire_length, expected.wire_length()) << "stack " << i;
    ASSERT_EQ(view.bytes.size(), expected.bytes().size()) << "stack " << i;
    EXPECT_TRUE(std::equal(view.bytes.begin(), view.bytes.end(),
                           expected.bytes().begin()))
        << "stack " << i << " bytes differ";
  }
}

TEST(FrameBuilder, ResetClearsStackAndBuilderIsReusable) {
  FrameBuilder b;
  b.ethernet(kSrc, kDst).ipv4(kA, kB).udp(1, 2).pad_to(1514);
  const Frame first = b.build(5);
  b.reset();
  EXPECT_EQ(b.layer_count(), 0u);
  b.ethernet(kSrc, kDst).ipv4(kB, kA).tcp(3, 4);
  const Frame second = b.build(6);
  // No residue from the first stack: a fresh builder agrees.
  const Frame fresh =
      FrameBuilder().ethernet(kSrc, kDst).ipv4(kB, kA).tcp(3, 4).build(6);
  EXPECT_TRUE(std::equal(second.bytes().begin(), second.bytes().end(),
                         fresh.bytes().begin(), fresh.bytes().end()));
  EXPECT_NE(first.captured_length(), second.captured_length());
}

TEST(FrameBuilder, BuildManyIntoMatchesPerFrameSeqBuilds) {
  // The template-stamp path vs the ground truth: re-describing the stack
  // per frame with the seq threaded through. Covers a plain TCP stack, a
  // DNS stack (BE16 id patch), and a VXLAN stack whose patched TCP sits
  // behind an inner Ethernet.
  const std::vector<util::Nanos> ts = {5, 0, 99, 7, 12345};
  const std::vector<std::uint32_t> seqs = {0, 1000, 77000, 0xffffffffu, 42};

  struct Case {
    const char* name;
    std::function<void(FrameBuilder&, std::uint32_t)> describe;
  };
  const Case cases[] = {
      {"tcp",
       [](FrameBuilder& b, std::uint32_t seq) {
         b.ethernet(kSrc, kDst).ipv4(kA, kB)
             .tcp(49152, 443, tcp_flags::kAck | tcp_flags::kPsh, seq)
             .tls().pad_to(1514);
       }},
      {"dns",
       [](FrameBuilder& b, std::uint32_t seq) {
         b.ethernet(kSrc, kDst).ipv4(kA, kB).udp(1234, 53)
             .dns(static_cast<std::uint16_t>(seq)).payload(24).pad_to(140);
       }},
      {"vxlan",
       [](FrameBuilder& b, std::uint32_t seq) {
         b.ethernet(kSrc, kDst).ipv4(kA, kB).udp(4789, 4789).vxlan(4096)
             .ethernet(kDst, kSrc).ipv4(kA, kB)
             .tcp(49152, 5201, tcp_flags::kAck | tcp_flags::kPsh, seq)
             .pad_to(1514);
       }},
  };
  for (const Case& c : cases) {
    FrameBuilder batched;
    c.describe(batched, 0);  // Template: patched fields described as 0.
    FrameStore store;
    batched.build_many_into(store, ts, seqs, PerFrameField::kTcpSeqAndDnsId);
    ASSERT_EQ(store.size(), ts.size()) << c.name;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      FrameBuilder reference;
      c.describe(reference, seqs[i]);
      const Frame expected = reference.build(ts[i]);
      const FrameView view = store.view(i);
      EXPECT_EQ(view.timestamp, expected.timestamp()) << c.name << " " << i;
      ASSERT_EQ(view.bytes.size(), expected.bytes().size())
          << c.name << " " << i;
      EXPECT_TRUE(std::equal(view.bytes.begin(), view.bytes.end(),
                             expected.bytes().begin()))
          << c.name << " frame " << i << " bytes differ";
    }
  }
}

TEST(FrameBuilder, BuildManyIntoMatchesPerFrameAckBuilds) {
  FrameBuilder batched;
  batched.ethernet(kDst, kSrc).ipv4(kB, kA)
      .tcp(443, 49152, tcp_flags::kAck, 0, 0).pad_to(68);
  const std::vector<util::Nanos> ts = {3, 1, 4, 1, 5, 9};
  const std::vector<std::uint32_t> acks = {0, 5000, 10000, 0xfffffc18u, 1, 2};
  FrameStore store;
  batched.build_many_into(store, ts, acks, PerFrameField::kTcpAck);
  ASSERT_EQ(store.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Frame expected = FrameBuilder()
                               .ethernet(kDst, kSrc)
                               .ipv4(kB, kA)
                               .tcp(443, 49152, tcp_flags::kAck, 0, acks[i])
                               .pad_to(68)
                               .build(ts[i]);
    const FrameView view = store.view(i);
    EXPECT_EQ(view.timestamp, expected.timestamp()) << i;
    ASSERT_EQ(view.bytes.size(), expected.bytes().size()) << i;
    EXPECT_TRUE(std::equal(view.bytes.begin(), view.bytes.end(),
                           expected.bytes().begin()))
        << "frame " << i << " bytes differ";
  }
}

TEST(FrameBuilder, BuildManyIntoNoneFieldEmitsIdenticalFrames) {
  // kNone: frames differ only by timestamp; values may be empty. Stacks
  // without TCP/DNS (here ICMP) also take this shape under the seq field.
  FrameBuilder b;
  b.ethernet(kSrc, kDst).ipv4(kA, kB).icmp(8, 0).payload(48).pad_to(98);
  const std::vector<util::Nanos> ts = {10, 20, 30};
  FrameStore store;
  b.build_many_into(store, ts, {}, PerFrameField::kNone);
  ASSERT_EQ(store.size(), ts.size());
  const Frame expected = b.build(0);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const FrameView view = store.view(i);
    EXPECT_EQ(view.timestamp, ts[i]) << i;
    ASSERT_EQ(view.bytes.size(), expected.bytes().size()) << i;
    EXPECT_TRUE(std::equal(view.bytes.begin(), view.bytes.end(),
                           expected.bytes().begin()))
        << "frame " << i;
  }
  // The builder stays reusable after a batched build.
  const Frame again = b.build(0);
  ASSERT_EQ(again.bytes().size(), expected.bytes().size());
  EXPECT_TRUE(std::equal(again.bytes().begin(), again.bytes().end(),
                         expected.bytes().begin()));
}

TEST(FrameStore, ClearKeepsNothingButCapacity) {
  FrameStore store;
  FrameBuilder().ethernet(kSrc, kDst).ipv4(kA, kB).udp(1, 2).build_into(store,
                                                                        1);
  ASSERT_EQ(store.size(), 1u);
  const std::size_t bytes = store.total_bytes();
  EXPECT_GT(bytes, 0u);
  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.total_bytes(), 0u);
}

}  // namespace
}  // namespace patchwork::net
