#include "net/frame_builder.hpp"

#include <gtest/gtest.h>

#include "net/parser.hpp"

namespace patchwork::net {
namespace {

const MacAddress kSrc = MacAddress::from_id(1);
const MacAddress kDst = MacAddress::from_id(2);
const Ipv4Address kA = Ipv4Address::from_octets(10, 0, 0, 1);
const Ipv4Address kB = Ipv4Address::from_octets(10, 0, 0, 2);

TEST(FrameBuilder, MinimalEthernetIpv4Tcp) {
  const Frame f =
      FrameBuilder().ethernet(kSrc, kDst).ipv4(kA, kB).tcp(1000, 2000).build();
  EXPECT_EQ(f.wire_length(), 14u + 20u + 20u);
  // EtherType chained automatically.
  EXPECT_EQ(f.bytes()[12], 0x08);
  EXPECT_EQ(f.bytes()[13], 0x00);
}

TEST(FrameBuilder, Ipv4LengthsAreResolved) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(1, 2)
                      .payload(100)
                      .build();
  auto ip = Ipv4Header::decode(f.bytes(), 14);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->total_length, 20 + 8 + 100);
  EXPECT_EQ(ip->protocol, kIpProtoUdp);
  auto udp = UdpHeader::decode(f.bytes(), 34);
  ASSERT_TRUE(udp.has_value());
  EXPECT_EQ(udp->length, 8 + 100);
}

TEST(FrameBuilder, MplsBottomOfStackOnlyOnLast) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .mpls(100)
                      .mpls(200)
                      .ipv4(kA, kB)
                      .tcp(1, 2)
                      .build();
  auto l1 = MplsLabel::decode(f.bytes(), 14);
  auto l2 = MplsLabel::decode(f.bytes(), 18);
  ASSERT_TRUE(l1 && l2);
  EXPECT_FALSE(l1->bottom_of_stack);
  EXPECT_TRUE(l2->bottom_of_stack);
  EXPECT_EQ(l1->label, 100u);
  EXPECT_EQ(l2->label, 200u);
}

TEST(FrameBuilder, PadToExtendsFrame) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .tcp(1, 2)
                      .pad_to(1514)
                      .build();
  EXPECT_EQ(f.wire_length(), 1514u);
  // The IPv4 total length must include the padding payload.
  auto ip = Ipv4Header::decode(f.bytes(), 14);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->total_length, 1514 - 14);
}

TEST(FrameBuilder, PadToIsNoOpWhenAlreadyLonger) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(1, 2)
                      .payload(200)
                      .pad_to(64)
                      .build();
  EXPECT_EQ(f.wire_length(), 14u + 20u + 8u + 200u);
}

TEST(FrameBuilder, PaperEncapsulationExample) {
  // "Ethernet / VLAN / MPLS / MPLS / PseudoWire / Ethernet / IPv4 / TCP /
  // TLS" — the paper's Section 8.2 example stack.
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .vlan(100)
                      .mpls(16001)
                      .mpls(16002)
                      .pseudowire()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .tcp(49152, 443)
                      .tls()
                      .payload(64)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_EQ(parsed.stack_string(),
            "eth/vlan/mpls/mpls/pw/eth/ipv4/tcp/tls/data");
  EXPECT_EQ(parsed.header_depth(), 9u);
}

TEST(FrameBuilder, BuilderIsReusable) {
  FrameBuilder b;
  b.ethernet(kSrc, kDst).ipv4(kA, kB).udp(1, 2).pad_to(100);
  const Frame f1 = b.build(10);
  const Frame f2 = b.build(20);
  EXPECT_EQ(f1.wire_length(), f2.wire_length());
  EXPECT_EQ(f1.timestamp(), 10u);
  EXPECT_EQ(f2.timestamp(), 20u);
  EXPECT_TRUE(std::equal(f1.bytes().begin(), f1.bytes().end(),
                         f2.bytes().begin()));
}

TEST(FrameBuilder, SshBannerInPayload) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .tcp(50000, 22)
                      .ssh_banner()
                      .pad_to(128)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_TRUE(parsed.has(Protocol::kSsh));
  EXPECT_EQ(f.wire_length(), 128u);
}

TEST(FrameBuilder, VxlanCarriesInnerEthernet) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(40000, 4789)
                      .vxlan(77)
                      .ethernet(kDst, kSrc)
                      .ipv4(kB, kA)
                      .tcp(1, 2)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_EQ(parsed.count(Protocol::kEthernet), 2u);
  EXPECT_TRUE(parsed.has(Protocol::kVxlan));
  ASSERT_TRUE(parsed.vxlan_vni.has_value());
  EXPECT_EQ(*parsed.vxlan_vni, 77u);
}

TEST(FrameBuilder, TruncateKeepsWireLength) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(1, 2)
                      .pad_to(1514)
                      .build();
  const Frame cut = f.truncate(200);
  EXPECT_EQ(cut.captured_length(), 200u);
  EXPECT_EQ(cut.wire_length(), 1514u);
  EXPECT_TRUE(cut.truncated());
  EXPECT_FALSE(f.truncated());
}

TEST(FrameBuilder, TruncateZeroKeepsEverything) {
  const Frame f =
      FrameBuilder().ethernet(kSrc, kDst).ipv4(kA, kB).udp(1, 2).build();
  const Frame same = f.truncate(0);
  EXPECT_EQ(same.captured_length(), f.captured_length());
}

}  // namespace
}  // namespace patchwork::net
