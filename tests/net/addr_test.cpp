#include "net/addr.hpp"

#include <gtest/gtest.h>

namespace patchwork::net {
namespace {

TEST(MacAddress, RoundTripsThroughString) {
  MacAddress mac{{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42}};
  EXPECT_EQ(mac.to_string(), "de:ad:be:ef:00:42");
  auto parsed = MacAddress::parse("de:ad:be:ef:00:42");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, mac);
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("de:ad:be:ef:00").has_value());
  EXPECT_FALSE(MacAddress::parse("zz:ad:be:ef:00:42").has_value());
  EXPECT_FALSE(MacAddress::parse("de-ad-be-ef-00-42").has_value());
}

TEST(MacAddress, FromIdIsLocallyAdministeredUnicast) {
  const MacAddress mac = MacAddress::from_id(12345);
  EXPECT_EQ(mac.bytes[0], 0x02);
  EXPECT_FALSE(mac.is_multicast());
  EXPECT_NE(MacAddress::from_id(1), MacAddress::from_id(2));
}

TEST(MacAddress, BroadcastDetection) {
  MacAddress bc{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  EXPECT_TRUE(bc.is_broadcast());
  EXPECT_TRUE(bc.is_multicast());
  EXPECT_FALSE(MacAddress::from_id(1).is_broadcast());
}

TEST(Ipv4Address, RoundTripsThroughString) {
  const Ipv4Address a = Ipv4Address::from_octets(10, 1, 2, 3);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  auto parsed = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

TEST(Ipv4Address, ParseRejectsBadInput) {
  EXPECT_FALSE(Ipv4Address::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3 ").has_value());
}

TEST(Ipv4Address, TenSlashEight) {
  EXPECT_TRUE(Ipv4Address::from_octets(10, 0, 0, 1).in_ten_slash_eight());
  EXPECT_FALSE(Ipv4Address::from_octets(192, 168, 0, 1).in_ten_slash_eight());
}

TEST(Ipv4Address, OrderingMatchesNumericValue) {
  EXPECT_LT(Ipv4Address::from_octets(10, 0, 0, 1),
            Ipv4Address::from_octets(10, 0, 0, 2));
}

TEST(Ipv6Address, FromWordsAndToString) {
  const Ipv6Address a = Ipv6Address::from_words(
      {0xfd00, 0x1, 0x2, 0x3, 0x4, 0x5, 0x6, 0x7});
  EXPECT_EQ(a.to_string(),
            "fd00:0001:0002:0003:0004:0005:0006:0007");
  EXPECT_EQ(a.bytes[0], 0xfd);
  EXPECT_EQ(a.bytes[1], 0x00);
  EXPECT_EQ(a.bytes[15], 0x07);
}

}  // namespace
}  // namespace patchwork::net
