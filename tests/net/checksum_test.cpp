#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace patchwork::net {
namespace {

TEST(InternetChecksum, Rfc1071Example) {
  // Classic example from RFC 1071 discussions.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, ZeroBufferIsAllOnes) {
  const std::vector<std::uint8_t> data(8, 0);
  EXPECT_EQ(internet_checksum(data), 0xffff);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> even = {0x12, 0x34, 0x56, 0x00};
  const std::vector<std::uint8_t> odd = {0x12, 0x34, 0x56};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(InternetChecksum, VerifiesToZero) {
  // A header with its checksum inserted sums to 0 (i.e. ~0 == 0xffff
  // before complement).
  std::vector<std::uint8_t> header = {0x45, 0x00, 0x00, 0x28, 0x00, 0x00,
                                      0x40, 0x00, 0x40, 0x06, 0x00, 0x00,
                                      0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00,
                                      0x00, 0x02};
  const std::uint16_t sum = internet_checksum(header);
  header[10] = static_cast<std::uint8_t>(sum >> 8);
  header[11] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(internet_checksum(header), 0);
}

}  // namespace
}  // namespace patchwork::net
