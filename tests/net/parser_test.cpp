#include "net/parser.hpp"

#include <gtest/gtest.h>

#include "net/frame_builder.hpp"

namespace patchwork::net {
namespace {

const MacAddress kSrc = MacAddress::from_id(1);
const MacAddress kDst = MacAddress::from_id(2);
const Ipv4Address kA = Ipv4Address::from_octets(10, 0, 0, 1);
const Ipv4Address kB = Ipv4Address::from_octets(10, 9, 9, 9);

TEST(Parser, ClassifiesByPort) {
  struct Case {
    std::uint16_t port;
    Protocol expected;
  };
  for (const auto& [port, expected] :
       {Case{22, Protocol::kSsh}, Case{80, Protocol::kHttp},
        Case{5201, Protocol::kIperf}}) {
    FrameBuilder b;
    b.ethernet(kSrc, kDst).ipv4(kA, kB).tcp(50000, port);
    if (port == 22) {
      b.ssh_banner();
    } else if (port == 80) {
      b.http_request();
    } else {
      b.payload(100);
    }
    const ParsedFrame parsed = parse_frame(b.build());
    EXPECT_TRUE(parsed.has(expected)) << "port " << port;
  }
}

TEST(Parser, TlsOnPort443) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .tcp(50000, 443)
                      .tls(23)
                      .payload(256)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_TRUE(parsed.has(Protocol::kTls));
}

TEST(Parser, PureAckHasNoPayloadLayer) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .vlan(5)
                      .mpls(16000)
                      .ipv4(kA, kB)
                      .tcp(1, 2, tcp_flags::kAck)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_EQ(parsed.stack_string(), "eth/vlan/mpls/ipv4/tcp");
  ASSERT_TRUE(parsed.tcp.has_value());
  EXPECT_EQ(parsed.tcp->flags, tcp_flags::kAck);
}

TEST(Parser, MplsFirstNibbleHeuristicIpv4) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .mpls(100)
                      .ipv4(kA, kB)
                      .udp(1, 2)
                      .build();
  EXPECT_EQ(parse_frame(f).stack_string(), "eth/mpls/ipv4/udp");
}

TEST(Parser, MplsFirstNibbleHeuristicIpv6) {
  const Frame f =
      FrameBuilder()
          .ethernet(kSrc, kDst)
          .mpls(100)
          .ipv6(Ipv6Address::from_words({0xfd00, 0, 0, 0, 0, 0, 0, 1}),
                Ipv6Address::from_words({0xfd00, 0, 0, 0, 0, 0, 0, 2}))
          .tcp(1, 22)
          .build();
  EXPECT_EQ(parse_frame(f).stack_string(), "eth/mpls/ipv6/tcp");
}

TEST(Parser, MplsFirstNibblePseudowire) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .mpls(100)
                      .pseudowire()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(1, 2)
                      .build();
  EXPECT_EQ(parse_frame(f).stack_string(), "eth/mpls/pw/eth/ipv4/udp");
}

TEST(Parser, ExtractsTagsForFlowClassification) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .vlan(123)
                      .mpls(16001)
                      .mpls(16002)
                      .pseudowire()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .tcp(1000, 2000)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  ASSERT_EQ(parsed.vlan_ids.size(), 1u);
  EXPECT_EQ(parsed.vlan_ids[0], 123);
  ASSERT_EQ(parsed.mpls_labels.size(), 2u);
  EXPECT_EQ(parsed.mpls_labels[0], 16001u);
  EXPECT_EQ(parsed.mpls_labels[1], 16002u);
  ASSERT_TRUE(parsed.ipv4.has_value());
  EXPECT_EQ(parsed.ipv4->src, kA);
  ASSERT_TRUE(parsed.tcp.has_value());
  EXPECT_EQ(parsed.tcp->dst_port, 2000);
}

TEST(Parser, SnaplenTruncationMarksTruncatedLayer) {
  const Frame full = FrameBuilder()
                         .ethernet(kSrc, kDst)
                         .vlan(5)
                         .ipv4(kA, kB)
                         .tcp(1, 2)
                         .payload(1000)
                         .build();
  // Cut inside the IPv4 header: eth(14) + vlan(4) + 10 bytes of IP.
  const Frame cut = full.truncate(28);
  const ParsedFrame parsed = parse_frame(cut);
  EXPECT_TRUE(parsed.has(Protocol::kTruncated));
  EXPECT_EQ(parsed.stack_string(), "eth/vlan/truncated");
  EXPECT_FALSE(parsed.ipv4.has_value());
}

TEST(Parser, TruncationAfterHeadersKeepsThem) {
  const Frame full = FrameBuilder()
                         .ethernet(kSrc, kDst)
                         .ipv4(kA, kB)
                         .tcp(1, 5201)
                         .payload(1400)
                         .build();
  const Frame cut = full.truncate(200);  // Paper's profile snaplen.
  const ParsedFrame parsed = parse_frame(cut);
  EXPECT_TRUE(parsed.has(Protocol::kIpv4));
  EXPECT_TRUE(parsed.has(Protocol::kTcp));
  EXPECT_TRUE(parsed.has(Protocol::kIperf));
  EXPECT_EQ(parsed.wire_length, 14u + 20u + 20u + 1400u);
  EXPECT_EQ(parsed.captured_length, 200u);
}

TEST(Parser, ArpFrame) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .arp(kSrc, kA, kB)
                      .pad_to(64)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_TRUE(parsed.has(Protocol::kArp));
  EXPECT_FALSE(parsed.ipv4.has_value());
}

TEST(Parser, DnsOverUdp) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(40000, 53)
                      .dns(0x99)
                      .payload(20)
                      .build();
  EXPECT_TRUE(parse_frame(f).has(Protocol::kDns));
}

TEST(Parser, NtpOverUdp) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .udp(40000, 123)
                      .ntp()
                      .build();
  EXPECT_TRUE(parse_frame(f).has(Protocol::kNtp));
}

TEST(Parser, IcmpEcho) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .icmp(8, 0)
                      .payload(48)
                      .build();
  EXPECT_TRUE(parse_frame(f).has(Protocol::kIcmp));
}

TEST(Parser, GreCarriesInnerEthernet) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .gre()
                      .ethernet(kDst, kSrc)
                      .ipv4(kB, kA)
                      .tcp(1000, 5201)
                      .payload(50)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_EQ(parsed.stack_string(), "eth/ipv4/gre/eth/ipv4/tcp/iperf");
  EXPECT_EQ(parsed.count(Protocol::kEthernet), 2u);
  // Innermost network/transport fields win for flow classification.
  ASSERT_TRUE(parsed.ipv4.has_value());
  EXPECT_EQ(parsed.ipv4->src, kB);
  ASSERT_TRUE(parsed.tcp.has_value());
  EXPECT_EQ(parsed.tcp->dst_port, 5201);
}

TEST(Parser, GreCarriesIpDirectly) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .ipv4(kA, kB)
                      .gre()
                      .ipv4(kB, kA)
                      .udp(1, 2)
                      .payload(10)
                      .build();
  EXPECT_EQ(parse_frame(f).stack_string(), "eth/ipv4/gre/ipv4/udp/data");
}

TEST(Parser, GreWithOptionsIsNotInvented) {
  // A GRE header with option flags set is outside the minimal codec: the
  // dissector must not claim it parsed one.
  Bytes buf;
  EthernetHeader eth;
  eth.src = kSrc;
  eth.dst = kDst;
  eth.ethertype = kEtherTypeIpv4;
  eth.encode(buf);
  Ipv4Header ip;
  ip.src = kA;
  ip.dst = kB;
  ip.protocol = kIpProtoGre;
  ip.total_length = 20 + 8;
  ip.encode(buf);
  buf.push_back(0x80);  // Checksum-present flag.
  buf.push_back(0x00);
  buf.push_back(0x08);
  buf.push_back(0x00);
  const ParsedFrame parsed = parse_bytes(buf, buf.size(), 0);
  EXPECT_FALSE(parsed.has(Protocol::kGre));
}

TEST(Parser, EmptyBufferYieldsNoLayers) {
  const ParsedFrame parsed = parse_bytes({}, 0, 0);
  EXPECT_TRUE(parsed.layers.empty());
  EXPECT_EQ(parsed.header_depth(), 0u);
}

TEST(Parser, UnknownEthertypeBecomesPayload) {
  Bytes buf;
  EthernetHeader eth;
  eth.src = kSrc;
  eth.dst = kDst;
  eth.ethertype = 0x1234;  // Unknown.
  eth.encode(buf);
  buf.insert(buf.end(), 50, 0xaa);
  const ParsedFrame parsed = parse_bytes(buf, buf.size(), 0);
  EXPECT_EQ(parsed.stack_string(), "eth/data");
}

TEST(Parser, HeaderDepthExcludesPayload) {
  const Frame f = FrameBuilder()
                      .ethernet(kSrc, kDst)
                      .vlan(1)
                      .ipv4(kA, kB)
                      .tcp(1, 5201)
                      .payload(10)
                      .build();
  const ParsedFrame parsed = parse_frame(f);
  EXPECT_EQ(parsed.header_depth(), 4u);  // eth, vlan, ipv4, tcp.
  EXPECT_EQ(parsed.layers.size(), 5u);   // + iperf payload.
}

TEST(Parser, DeepestPaperStackDepth) {
  // "Ethernet / VLAN / MPLS / MPLS / PseudoWire / Ethernet / IPv6 / SSH"
  const Frame f =
      FrameBuilder()
          .ethernet(kSrc, kDst)
          .vlan(2)
          .mpls(1)
          .mpls(2)
          .pseudowire()
          .ethernet(kSrc, kDst)
          .ipv6(Ipv6Address::from_words({0xfd00, 0, 0, 0, 0, 0, 0, 1}),
                Ipv6Address::from_words({0xfd00, 0, 0, 0, 0, 0, 0, 2}))
          .tcp(50000, 22)
          .ssh_banner()
          .build();
  const ParsedFrame parsed = parse_frame(f);
  // eth vlan mpls mpls pw eth ipv6 tcp ssh = 9 headers.
  EXPECT_EQ(parsed.header_depth(), 9u);
}

}  // namespace
}  // namespace patchwork::net
