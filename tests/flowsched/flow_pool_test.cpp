// The bounded flow pool's two contracts: the bound is never exceeded
// (acquire reports exhaustion instead), and released slots are reused
// LIFO — most-recently-freed first, BESS's temporal-locality discipline.
#include "flowsched/flow_pool.hpp"

#include <gtest/gtest.h>

namespace patchwork::flowsched {
namespace {

TEST(FlowSched, PoolNeverExceedsBound) {
  FlowPool pool(3);
  EXPECT_TRUE(pool.acquire().has_value());
  EXPECT_TRUE(pool.acquire().has_value());
  EXPECT_TRUE(pool.acquire().has_value());
  EXPECT_EQ(pool.active(), 3u);
  EXPECT_FALSE(pool.acquire().has_value()) << "bound exceeded";
  EXPECT_EQ(pool.active(), 3u);
  EXPECT_EQ(pool.high_water(), 3u);
}

TEST(FlowSched, PoolReusesSlotsLifo) {
  FlowPool pool(8);
  const std::uint32_t a = pool.acquire().value();
  const std::uint32_t b = pool.acquire().value();
  const std::uint32_t c = pool.acquire().value();
  pool.release(a);
  pool.release(b);
  pool.release(c);
  // Most-recently-released first: c, then b, then a.
  EXPECT_EQ(pool.acquire().value(), c);
  EXPECT_EQ(pool.acquire().value(), b);
  EXPECT_EQ(pool.acquire().value(), a);
  EXPECT_EQ(pool.reuses(), 3u);
}

TEST(FlowSched, PoolReleaseMakesRoomAtTheBound) {
  FlowPool pool(2);
  const std::uint32_t a = pool.acquire().value();
  EXPECT_TRUE(pool.acquire().has_value());
  EXPECT_FALSE(pool.acquire().has_value());
  pool.release(a);
  EXPECT_EQ(pool.active(), 1u);
  const auto again = pool.acquire();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, a);  // The freed slot, not a fresh one.
  EXPECT_EQ(pool.high_water(), 2u);
}

TEST(FlowSched, PoolHighWaterTracksPeakNotCurrent) {
  FlowPool pool(16);
  const std::uint32_t a = pool.acquire().value();
  const std::uint32_t b = pool.acquire().value();
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.active(), 0u);
  EXPECT_EQ(pool.high_water(), 2u);
}

}  // namespace
}  // namespace patchwork::flowsched
