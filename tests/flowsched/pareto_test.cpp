// Property tests for the measured-mean Pareto duration sampler: across
// seeds, the empirical mean of many draws must land on the configured
// mean regardless of the tail shape — that is the whole point of the
// BESS-style numeric calibration.
#include "flowsched/pareto.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace patchwork::flowsched {
namespace {

double empirical_mean(const ParetoDurations& d, std::uint64_t seed,
                      std::size_t n) {
  util::Rng rng(seed);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += d.draw(rng);
  return sum / static_cast<double>(n);
}

TEST(FlowSched, MeasuredParetoMeanMatchesConfiguredAcrossSeeds) {
  constexpr double kMean = 5.0;
  constexpr std::size_t kDraws = 20000;
  for (double shape : {1.1, 1.3, 2.0}) {
    const ParetoDurations d(shape, kMean);
    EXPECT_GT(d.measured_raw_mean(), 1.0) << "shape " << shape;
    // Heavier tails need looser sampling tolerance; the calibration error
    // itself is well inside either bound.
    const double tol = shape < 1.5 ? 0.20 : 0.10;
    for (std::uint64_t seed : {7ull, 21ull, 1234ull}) {
      const double mean = empirical_mean(d, seed, kDraws);
      EXPECT_NEAR(mean, kMean, kMean * tol)
          << "shape " << shape << " seed " << seed;
    }
  }
}

TEST(FlowSched, ParetoDrawsAreHeavyTailedButTruncated) {
  const ParetoDurations d(1.3, 5.0);
  util::Rng rng(42);
  double max_draw = 0.0;
  std::size_t above_mean = 0;
  constexpr std::size_t kDraws = 20000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const double x = d.draw(rng);
    EXPECT_GT(x, 0.0);
    // Truncation cap: raw <= kMaxRaw, so draws <= kMaxRaw * scale.
    EXPECT_LE(x, ParetoDurations::kMaxRaw * 5.0);
    max_draw = std::max(max_draw, x);
    if (x > 5.0) ++above_mean;
  }
  // Heavy tail: the mean sits far above the median — most draws are below
  // it, a few huge ones balance the books.
  EXPECT_LT(above_mean, kDraws / 4);
  EXPECT_GT(max_draw, 5.0 * 10.0);
}

TEST(FlowSched, ParetoCalibrationIsDeterministic) {
  const ParetoDurations a(1.26, 3.0);
  const ParetoDurations b(1.26, 3.0);
  EXPECT_DOUBLE_EQ(a.measured_raw_mean(), b.measured_raw_mean());
  util::Rng ra(9), rb(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.draw(ra), b.draw(rb));
  }
}

}  // namespace
}  // namespace patchwork::flowsched
