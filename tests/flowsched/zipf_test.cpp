// Property tests for Zipf flow popularity: the empirical rank-frequency
// curve of many draws must be a power law whose log-log slope matches the
// configured exponent (the --zipf-param knob).
#include "flowsched/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace patchwork::flowsched {
namespace {

/// Least-squares slope of log(count) against log(rank + 1) over the first
/// `head` ranks (the well-populated part of the curve).
double rank_frequency_slope(const std::vector<std::uint64_t>& counts,
                            std::size_t head) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double n = 0;
  for (std::size_t r = 0; r < head; ++r) {
    if (counts[r] == 0) continue;
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(counts[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    n += 1.0;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

TEST(FlowSched, ZipfRankFrequencySlopeMatchesParam) {
  constexpr std::size_t kRanks = 500;
  constexpr std::size_t kDraws = 200000;
  for (double s : {0.8, 1.26}) {
    const ZipfSampler zipf(kRanks, s);
    util::Rng rng(99);
    std::vector<std::uint64_t> counts(kRanks, 0);
    for (std::size_t i = 0; i < kDraws; ++i) ++counts[zipf.draw(rng)];
    const double slope = rank_frequency_slope(counts, 50);
    EXPECT_NEAR(slope, -s, 0.12) << "zipf_param " << s;
  }
}

TEST(FlowSched, ZipfProbabilitiesNormalizeAndDecay) {
  const ZipfSampler zipf(100, 1.26);
  double total = 0.0;
  for (std::size_t r = 0; r < zipf.ranks(); ++r) {
    total += zipf.probability(r);
    if (r > 0) EXPECT_LT(zipf.probability(r), zipf.probability(r - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.probability(100), 0.0);  // Out of range.
}

TEST(FlowSched, ZipfZeroExponentIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.probability(r), 0.1, 1e-12);
  }
}

TEST(FlowSched, ZipfDrawsAreDeterministic) {
  const ZipfSampler zipf(64, 1.26);
  util::Rng a(5), b(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(zipf.draw(a), zipf.draw(b));
  }
}

}  // namespace
}  // namespace patchwork::flowsched
