// The event-driven planner's contracts: same seed -> same plan, units
// confined to their flows' active intervals, counter-addressed rendering
// invariant to burst decomposition, churn and pool pressure observable
// through the stats, and the max_frames thinning cap respected.
#include "flowsched/event_gen.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "net/frame_store.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"

namespace patchwork::flowsched {
namespace {

traffic::SiteWorkloadProfile test_profile() {
  util::Rng rng(5);
  return traffic::make_site_profiles(rng, 1).front();
}

traffic::WindowParams test_params() {
  traffic::WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 2e9;
  params.max_frames = 5000;
  return params;
}

FlowModelConfig event_config() {
  FlowModelConfig config;
  config.model = FlowModel::kEvent;
  config.flows_per_second = 30.0;
  config.mean_flow_duration_s = 4.0;
  config.flow_keys = 64;
  return config;
}

TEST(FlowSched, EventPlanDeterministicForSameSeed) {
  const traffic::SiteWorkloadProfile profile = test_profile();
  const traffic::WindowParams params = test_params();
  const FlowModelConfig config = event_config();

  util::Rng ra(17), rb(17);
  EventPlanStats sa, sb;
  const traffic::WindowPlan a = plan_event_window(ra, profile, params,
                                                  config, &sa);
  const traffic::WindowPlan b = plan_event_window(rb, profile, params,
                                                  config, &sb);
  ASSERT_EQ(a.units.size(), b.units.size());
  ASSERT_FALSE(a.units.empty());
  for (std::size_t u = 0; u < a.units.size(); ++u) {
    EXPECT_EQ(a.units[u].frames, b.units[u].frames) << "unit " << u;
    EXPECT_EQ(a.units[u].acks, b.units[u].acks) << "unit " << u;
    EXPECT_EQ(a.units[u].ts_lo, b.units[u].ts_lo) << "unit " << u;
    EXPECT_EQ(a.units[u].ts_hi, b.units[u].ts_hi) << "unit " << u;
    EXPECT_EQ(a.units[u].flow.src_port, b.units[u].flow.src_port)
        << "unit " << u;
  }
  EXPECT_EQ(a.planned_frames, b.planned_frames);
  EXPECT_DOUBLE_EQ(a.offered_pps, b.offered_pps);
  EXPECT_EQ(sa.flows_generated, sb.flows_generated);
  EXPECT_EQ(sa.flows_expired, sb.flows_expired);
  EXPECT_EQ(sa.max_queue_depth, sb.max_queue_depth);
}

TEST(FlowSched, EventPlanUnitsStayInsideActiveIntervals) {
  const traffic::SiteWorkloadProfile profile = test_profile();
  const traffic::WindowParams params = test_params();
  util::Rng rng(23);
  EventPlanStats stats;
  const traffic::WindowPlan plan =
      plan_event_window(rng, profile, params, event_config(), &stats);
  ASSERT_FALSE(plan.units.empty());
  EXPECT_GT(stats.flows_generated, 0u);
  for (const traffic::RenderUnit& unit : plan.units) {
    EXPECT_LE(unit.ts_lo, unit.ts_hi);
    EXPECT_LT(unit.ts_hi, params.duration);
  }

  // Rendered timestamps honor the bounds: pure counter addressing into
  // the unit's own interval.
  const traffic::RenderUnit& unit = plan.units.front();
  util::Rng root(23);
  const util::RngBlock draws(root.split(traffic::kWindowUnitStreamBase));
  net::FrameStore store;
  net::FrameBuilder builder;
  traffic::render_unit(unit, draws, params.duration, 0, unit.frames,
                       builder, store);
  ASSERT_EQ(store.size(), unit.frames);
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_GE(store.view(i).timestamp, unit.ts_lo) << "frame " << i;
    EXPECT_LE(store.view(i).timestamp, unit.ts_hi) << "frame " << i;
  }
}

TEST(FlowSched, EventUnitRenderIsBatchInvariant) {
  const traffic::SiteWorkloadProfile profile = test_profile();
  const traffic::WindowParams params = test_params();
  util::Rng rng(31);
  const traffic::WindowPlan plan =
      plan_event_window(rng, profile, params, event_config());
  const traffic::RenderUnit* unit = nullptr;
  for (const traffic::RenderUnit& u : plan.units) {
    if (u.frames >= 10) {
      unit = &u;
      break;
    }
  }
  ASSERT_NE(unit, nullptr) << "no unit with >= 10 frames";

  util::Rng root(31);
  const util::RngBlock draws(root.split(traffic::kWindowUnitStreamBase + 3));
  net::FrameBuilder builder;
  net::FrameStore whole;
  traffic::render_unit(*unit, draws, params.duration, 0, unit->frames,
                       builder, whole);
  net::FrameStore pieces;
  const std::uint64_t mid = unit->frames / 2;
  traffic::render_unit(*unit, draws, params.duration, 0, mid, builder,
                       pieces);
  traffic::render_unit(*unit, draws, params.duration, mid, unit->frames,
                       builder, pieces);
  ASSERT_EQ(whole.size(), pieces.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(whole.view(i).timestamp, pieces.view(i).timestamp);
    ASSERT_EQ(whole.view(i).bytes.size(), pieces.view(i).bytes.size());
    EXPECT_TRUE(std::equal(whole.view(i).bytes.begin(),
                           whole.view(i).bytes.end(),
                           pieces.view(i).bytes.begin()))
        << "frame " << i << " bytes differ across batching";
  }
}

TEST(FlowSched, EventWindowRespectsTargetRate) {
  const traffic::SiteWorkloadProfile profile = test_profile();
  traffic::WindowParams params = test_params();
  params.max_frames = 100000;  // No thinning: measure the true stream.
  util::Rng rng(7);
  const traffic::WindowTraffic window =
      generate_event_window(rng, profile, params, event_config());
  EXPECT_DOUBLE_EQ(window.offered_bps, params.target_bps);
  EXPECT_GT(window.offered_pps, 0.0);
  ASSERT_FALSE(window.frames.empty());
  double rendered_bytes = 0.0;
  for (const net::Frame& f : window.frames) {
    rendered_bytes += static_cast<double>(f.wire_length());
  }
  const double mean_frame =
      rendered_bytes / static_cast<double>(window.frames.size());
  const double implied_bytes = window.offered_pps * 20.0 * mean_frame;
  const double target_bytes = params.target_bps * 20.0 / 8.0;
  // Wider than the mix model's band: arrivals are stochastic and the
  // mice clamp sheds chatter flows' nominal budget.
  EXPECT_GT(implied_bytes, 0.25 * target_bytes);
  EXPECT_LT(implied_bytes, 3.0 * target_bytes);
}

TEST(FlowSched, ChurnReplacesKeysAndIsCounted) {
  const traffic::SiteWorkloadProfile profile = test_profile();
  const traffic::WindowParams params = test_params();
  FlowModelConfig config = event_config();
  config.flow_keys = 16;
  config.churn_fpm = 600.0;  // A replacement every 100 ms.
  util::Rng rng(13);
  EventPlanStats stats;
  const traffic::WindowPlan plan =
      plan_event_window(rng, profile, params, config, &stats);
  EXPECT_GT(stats.churn_replacements, 100u);
  // Churn introduces fresh 5-tuples: the plan must reference more
  // distinct endpoints than the bounded key pool holds at any instant.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t,
                      std::uint16_t>>
      tuples;
  for (const traffic::RenderUnit& u : plan.units) {
    tuples.insert({u.flow.src_ip.value, u.flow.dst_ip.value,
                   u.flow.src_port, u.flow.dst_port});
  }
  EXPECT_GT(tuples.size(), config.flow_keys);
}

TEST(FlowSched, PoolBoundSuppressesArrivals) {
  const traffic::SiteWorkloadProfile profile = test_profile();
  const traffic::WindowParams params = test_params();
  FlowModelConfig config = event_config();
  config.flows_per_second = 100.0;
  config.mean_flow_duration_s = 5.0;  // ~500 concurrent wanted...
  config.max_active_flows = 4;        // ...but only 4 slots.
  util::Rng rng(29);
  EventPlanStats stats;
  plan_event_window(rng, profile, params, config, &stats);
  EXPECT_GT(stats.arrivals_suppressed, 0u);
  EXPECT_LE(stats.max_active_flows, 4u);
  EXPECT_GT(stats.flows_generated, 0u);
}

TEST(FlowSched, PlannedFramesRespectMaxFramesCap) {
  const traffic::SiteWorkloadProfile profile = test_profile();
  traffic::WindowParams params = test_params();
  params.target_bps = 50e9;  // Far more true frames than the render cap.
  params.max_frames = 2000;
  util::Rng rng(37);
  const traffic::WindowPlan plan =
      plan_event_window(rng, profile, params, event_config());
  EXPECT_GT(plan.planned_frames, 0u);
  EXPECT_LE(plan.planned_frames,
            static_cast<std::uint64_t>(params.max_frames * 1.2))
      << "thinning cap blown";
  EXPECT_GT(plan.offered_pps * 20.0,
            static_cast<double>(plan.planned_frames))
      << "true rate should exceed the rendered count when thinned";
}

TEST(FlowSched, ConfigSpellingsRoundTrip) {
  EXPECT_EQ(parse_flow_model("event"), FlowModel::kEvent);
  EXPECT_EQ(parse_flow_model("mix"), FlowModel::kMix);
  EXPECT_FALSE(parse_flow_model("bogus").has_value());
  EXPECT_EQ(parse_arrival("exp"), ArrivalProcess::kExponential);
  EXPECT_EQ(parse_arrival("uniform"), ArrivalProcess::kUniform);
  EXPECT_EQ(parse_duration("pareto"), DurationProcess::kPareto);
  EXPECT_EQ(to_string(FlowModel::kEvent), "event");
  EXPECT_EQ(to_string(ArrivalProcess::kExponential), "exp");
  EXPECT_EQ(to_string(DurationProcess::kPareto), "pareto");
}

}  // namespace
}  // namespace patchwork::flowsched
