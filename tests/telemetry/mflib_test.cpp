#include "telemetry/mflib.hpp"

#include <gtest/gtest.h>

#include "testbed/federation.hpp"

namespace patchwork::telemetry {
namespace {

struct MfLibTest : ::testing::Test {
  MfLibTest() : rng(1), fed(testbed::make_fabric_like_federation(rng)) {}

  /// Drive `seconds` of testbed time with 5-minute polls.
  void run_with_polls(MfLib& mflib, util::Nanos total) {
    for (util::Nanos t = 0; t < total; t += kDefaultPollInterval) {
      fed.advance(kDefaultPollInterval);
      mflib.poll_all(t + kDefaultPollInterval);
    }
  }

  util::Rng rng;
  testbed::Federation fed;
};

TEST_F(MfLibTest, PollAllCoversEveryPort) {
  MfLib mflib(fed);
  mflib.poll_all(0);
  std::size_t expected = 0;
  for (testbed::SiteId id : fed.site_ids()) {
    expected += fed.site(id).tor().port_count() * 2;  // Tx and Rx series.
  }
  EXPECT_EQ(mflib.db().series_count(), expected);
  EXPECT_EQ(mflib.polls_completed(), 1u);
}

TEST_F(MfLibTest, PortRateDerivedFromCounters) {
  MfLib mflib(fed);
  const testbed::GlobalPortId port{testbed::SiteId{0}, testbed::PortId{0}};
  fed.site(testbed::SiteId{0})
      .tor()
      .mutable_port(testbed::PortId{0})
      .set_rates(8e9, 4e9);
  run_with_polls(mflib, 30 * util::kMinute);
  const auto rate = mflib.port_rate(port, 15 * util::kMinute);
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(rate->tx_bps, 8e9, 1e8);
  EXPECT_NEAR(rate->rx_bps, 4e9, 1e8);
  EXPECT_NEAR(rate->total(), 12e9, 2e8);
}

TEST_F(MfLibTest, RateUnavailableBeforeTwoPolls) {
  MfLib mflib(fed);
  mflib.poll_all(0);
  EXPECT_FALSE(mflib
                   .port_rate({testbed::SiteId{0}, testbed::PortId{0}},
                              15 * util::kMinute)
                   .has_value());
}

TEST_F(MfLibTest, SiteRatesSortedBusiestFirst) {
  MfLib mflib(fed);
  testbed::Site& site = fed.site(testbed::SiteId{0});
  site.tor().mutable_port(testbed::PortId{0}).set_rates(1e9, 0);
  site.tor().mutable_port(testbed::PortId{1}).set_rates(50e9, 10e9);
  site.tor().mutable_port(testbed::PortId{2}).set_rates(10e9, 0);
  run_with_polls(mflib, 30 * util::kMinute);
  const auto rates =
      mflib.site_rates_sorted(testbed::SiteId{0}, 15 * util::kMinute);
  ASSERT_GE(rates.size(), 3u);
  EXPECT_EQ(rates[0].port.port.value, 1u);
  for (std::size_t i = 1; i < rates.size(); ++i) {
    EXPECT_GE(rates[i - 1].total(), rates[i].total());
  }
}

TEST_F(MfLibTest, TestbedTotalSumsTxAcrossSites) {
  MfLib mflib(fed);
  for (testbed::SiteId id : fed.site_ids()) {
    fed.site(id).tor().mutable_port(testbed::PortId{0}).set_rates(8e9, 0);
  }
  run_with_polls(mflib, 30 * util::kMinute);
  const double total = mflib.testbed_total_tx_bps(15 * util::kMinute);
  EXPECT_NEAR(total, 8e9 * static_cast<double>(fed.site_count()), 1e9);
}

TEST(PortSeriesName, EncodesSitePortDirection) {
  const testbed::GlobalPortId port{testbed::SiteId{3}, testbed::PortId{7}};
  EXPECT_EQ(port_series_name(port, testbed::Direction::kTx),
            "site3/p7/tx_bytes");
  EXPECT_EQ(port_series_name(port, testbed::Direction::kRx),
            "site3/p7/rx_bytes");
}

}  // namespace
}  // namespace patchwork::telemetry
