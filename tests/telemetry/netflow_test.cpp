#include "telemetry/netflow.hpp"

#include <gtest/gtest.h>

#include "net/frame_builder.hpp"
#include "net/parser.hpp"

namespace patchwork::telemetry {
namespace {

net::ParsedFrame tcp_frame(std::uint8_t host_a, std::uint8_t host_b,
                           std::uint16_t sport, std::uint16_t dport,
                           std::size_t size = 256,
                           std::uint8_t flags = net::tcp_flags::kAck) {
  net::FrameBuilder b;
  b.ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .vlan(100)
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, host_a),
            net::Ipv4Address::from_octets(10, 0, 0, host_b))
      .tcp(sport, dport, flags)
      .payload(1)
      .pad_to(size);
  return net::parse_frame(b.build());
}

TEST(NetflowCache, AggregatesPacketsIntoFlows) {
  NetflowCache cache;
  cache.observe(tcp_frame(1, 2, 1000, 443, 500), 0);
  cache.observe(tcp_frame(1, 2, 1000, 443, 700), util::kSecond);
  cache.observe(tcp_frame(3, 4, 2000, 22, 300), util::kSecond);
  EXPECT_EQ(cache.active_flows(), 2u);
  cache.flush(2 * util::kSecond);
  auto records = cache.drain();
  ASSERT_EQ(records.size(), 2u);
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.octets > b.octets; });
  EXPECT_EQ(records[0].packets, 2u);
  EXPECT_EQ(records[0].octets, 1200u);
  EXPECT_EQ(records[0].src_port, 1000);
  EXPECT_EQ(records[0].dst_port, 443);
  EXPECT_EQ(records[0].protocol, net::kIpProtoTcp);
}

TEST(NetflowCache, FlowsAreUnidirectional) {
  // Unlike Patchwork's canonical bidirectional keys, v5 splits the two
  // directions — one of its documented coarseness problems.
  NetflowCache cache;
  cache.observe(tcp_frame(1, 2, 1000, 443), 0);
  cache.observe(tcp_frame(2, 1, 443, 1000), 0);
  EXPECT_EQ(cache.active_flows(), 2u);
}

TEST(NetflowCache, TagsAreInvisible) {
  // Two slices, same 5-tuple, different VLAN: v5 merges them.
  net::FrameBuilder b1, b2;
  b1.ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .vlan(100)
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .tcp(1000, 443)
      .payload(8);
  b2.ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .vlan(200)
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .tcp(1000, 443)
      .payload(8);
  NetflowCache cache;
  cache.observe(net::parse_frame(b1.build()), 0);
  cache.observe(net::parse_frame(b2.build()), 0);
  EXPECT_EQ(cache.active_flows(), 1u);
}

TEST(NetflowCache, IdleTimeoutExpires) {
  NetflowCache::Config config;
  config.idle_timeout = 15 * util::kSecond;
  NetflowCache cache(config);
  cache.observe(tcp_frame(1, 2, 1, 2), 0);
  cache.sweep(10 * util::kSecond);
  EXPECT_EQ(cache.active_flows(), 1u);
  cache.sweep(16 * util::kSecond);
  EXPECT_EQ(cache.active_flows(), 0u);
  EXPECT_EQ(cache.drain().size(), 1u);
}

TEST(NetflowCache, ActiveTimeoutExpiresLongFlows) {
  NetflowCache::Config config;
  config.active_timeout = 60 * util::kSecond;
  config.idle_timeout = 15 * util::kSecond;
  NetflowCache cache(config);
  // Keep the flow busy past the active timeout.
  for (int s = 0; s <= 70; s += 5) {
    cache.observe(tcp_frame(1, 2, 1, 2),
                  static_cast<util::Nanos>(s) * util::kSecond);
  }
  cache.sweep(70 * util::kSecond);
  EXPECT_EQ(cache.active_flows(), 0u);  // Cut despite being active.
}

TEST(NetflowCache, OctetCounterCrossing32BitsEmitsAndResets) {
  // Regression: octets accumulated in a uint32, so a long-lived flow
  // silently wrapped before the active timeout exported it. The cache now
  // accumulates in 64 bits and exports-and-restarts the flow just before
  // the v5 wire field would overflow.
  NetflowCache::Config config;
  config.active_timeout = util::kHour;  // Never fires in this test.
  config.idle_timeout = util::kHour;
  NetflowCache cache(config);
  // One parsed frame, re-observed with an inflated wire length so the flow
  // crosses 2^32 octets in a handful of packets: 5 x 1 GiB.
  net::ParsedFrame frame = tcp_frame(1, 2, 1000, 443);
  frame.wire_length = 1ull << 30;
  for (int i = 0; i < 5; ++i) {
    cache.observe(frame, static_cast<util::Nanos>(i) * util::kSecond);
  }
  // The 4th packet would land on 4 GiB = 2^32, one past the wire field's
  // max, so the first three packets were exported as one record and the
  // flow restarted; packets 4 and 5 accumulate in the successor flow.
  auto exported = cache.drain();
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].packets, 3u);
  EXPECT_EQ(exported[0].octets, 3u * (1u << 30));
  EXPECT_EQ(cache.active_flows(), 1u);
  cache.flush(10 * util::kSecond);
  const auto rest = cache.drain();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].packets, 2u);
  EXPECT_EQ(rest[0].octets, 2u << 30);
  // Totals preserved across the reset: 5 GiB in all.
  EXPECT_EQ(static_cast<std::uint64_t>(exported[0].octets) + rest[0].octets,
            5ull << 30);
}

TEST(NetflowCache, IgnoresNonIpv4) {
  net::FrameBuilder arp;
  arp.ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .arp(net::MacAddress::from_id(1),
           net::Ipv4Address::from_octets(10, 0, 0, 1),
           net::Ipv4Address::from_octets(10, 0, 0, 2))
      .pad_to(64);
  NetflowCache cache;
  EXPECT_FALSE(cache.observe(net::parse_frame(arp.build()), 0));
  EXPECT_EQ(cache.ignored_frames(), 1u);
  EXPECT_EQ(cache.active_flows(), 0u);
}

TEST(NetflowCache, TcpFlagsAccumulate) {
  NetflowCache cache;
  cache.observe(tcp_frame(1, 2, 1, 2, 256, net::tcp_flags::kSyn), 0);
  cache.observe(tcp_frame(1, 2, 1, 2, 256,
                          net::tcp_flags::kAck | net::tcp_flags::kFin),
                util::kSecond);
  cache.flush(util::kSecond);
  const auto records = cache.drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].tcp_flags, net::tcp_flags::kSyn |
                                      net::tcp_flags::kAck |
                                      net::tcp_flags::kFin);
}

TEST(NetflowCache, CapacityEvictionPicksOldestLastSeen) {
  NetflowCache::Config config;
  config.max_flows = 2;
  NetflowCache cache(config);
  cache.observe(tcp_frame(1, 2, 1000, 443), 1 * util::kSecond);
  cache.observe(tcp_frame(3, 4, 2000, 443), 2 * util::kSecond);
  EXPECT_EQ(cache.active_flows(), 2u);
  // A third flow displaces the stalest one (host 1, last seen at t=1).
  cache.observe(tcp_frame(5, 6, 3000, 443), 3 * util::kSecond);
  EXPECT_EQ(cache.active_flows(), 2u);
  EXPECT_EQ(cache.evictions(NetflowCache::EvictCause::kCapacity), 1u);
  const auto records = cache.drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].src_addr, 0x0a000001u);  // 10.0.0.1's flow.
}

TEST(NetflowCache, CapacityEvictionTieBreaksOnSmallestKey) {
  NetflowCache::Config config;
  config.max_flows = 2;
  NetflowCache cache(config);
  // Equal last-seen: the deterministic victim is the smaller key, never
  // an iteration-order accident.
  cache.observe(tcp_frame(2, 3, 1000, 443), util::kSecond);
  cache.observe(tcp_frame(1, 2, 1000, 443), util::kSecond);
  cache.observe(tcp_frame(9, 9, 9000, 443), 2 * util::kSecond);
  const auto records = cache.drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].src_addr, 0x0a000001u)
      << "victim must be the smallest key among equally stale flows";
}

TEST(NetflowCache, EvictionCountersAttributeCause) {
  NetflowCache::Config config;
  config.active_timeout = 60 * util::kSecond;
  config.idle_timeout = 15 * util::kSecond;
  NetflowCache cache(config);
  // Flow A goes quiet after t=0: its idle deadline (15 s) passes long
  // before its active deadline (60 s) -> idle cause.
  cache.observe(tcp_frame(1, 2, 1000, 443), 0);
  // Flow B stays busy to t=60: at sweep time it is not idle, only old ->
  // active cause.
  for (int s = 0; s <= 60; s += 5) {
    cache.observe(tcp_frame(3, 4, 2000, 443),
                  static_cast<util::Nanos>(s) * util::kSecond);
  }
  cache.sweep(62 * util::kSecond);
  EXPECT_EQ(cache.active_flows(), 0u);
  EXPECT_EQ(cache.evictions(NetflowCache::EvictCause::kIdle), 1u);
  EXPECT_EQ(cache.evictions(NetflowCache::EvictCause::kActive), 1u);
  EXPECT_EQ(cache.evictions(NetflowCache::EvictCause::kCapacity), 0u);
  // End-of-metering flush is its own cause.
  cache.observe(tcp_frame(5, 6, 3000, 443), 63 * util::kSecond);
  cache.flush(64 * util::kSecond);
  EXPECT_EQ(cache.evictions(NetflowCache::EvictCause::kFlush), 1u);
}

TEST(NetflowCache, UnboundedByDefaultNeverCapacityEvicts) {
  NetflowCache cache;  // max_flows = 0: the legacy unbounded behaviour.
  for (int i = 0; i < 100; ++i) {
    cache.observe(tcp_frame(static_cast<std::uint8_t>(i / 10 + 1),
                            static_cast<std::uint8_t>(i % 10 + 1),
                            static_cast<std::uint16_t>(1000 + i), 443),
                  static_cast<util::Nanos>(i) * util::kMillisecond);
  }
  EXPECT_EQ(cache.active_flows(), 100u);
  EXPECT_EQ(cache.evictions(NetflowCache::EvictCause::kCapacity), 0u);
}

TEST(NetflowCache, EvictionStormDrainsIdenticallyAcrossRuns) {
  // The churn-storm regression: under capacity pressure the victim
  // sequence (and therefore the export stream) must reproduce exactly —
  // same frames in, same records out, run after run.
  auto storm = [] {
    NetflowCache::Config config;
    config.max_flows = 8;
    NetflowCache cache(config);
    // A deterministic churny workload: 40 distinct 5-tuples cycling
    // through an 8-slot cache.
    for (int i = 0; i < 200; ++i) {
      const int k = (i * 7) % 40;
      cache.observe(tcp_frame(static_cast<std::uint8_t>(k / 8 + 1),
                              static_cast<std::uint8_t>(k % 8 + 1),
                              static_cast<std::uint16_t>(5000 + k), 443),
                    static_cast<util::Nanos>(i) * util::kMillisecond);
    }
    cache.flush(util::kSecond);
    return cache.drain();
  };
  const auto a = storm();
  const auto b = storm();
  ASSERT_GT(a.size(), 8u) << "workload did not trigger evictions";
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src_addr, b[i].src_addr) << "record " << i;
    EXPECT_EQ(a[i].src_port, b[i].src_port) << "record " << i;
    EXPECT_EQ(a[i].packets, b[i].packets) << "record " << i;
    EXPECT_EQ(a[i].last_ms, b[i].last_ms) << "record " << i;
  }
}

TEST(NetflowExport, RoundTripsThroughCollector) {
  std::vector<NetflowRecord> records;
  for (int i = 0; i < 3; ++i) {
    NetflowRecord r;
    r.src_addr = 0x0a000001u + static_cast<std::uint32_t>(i);
    r.dst_addr = 0x0a000099;
    r.packets = 10 + static_cast<std::uint32_t>(i);
    r.octets = 1000;
    r.src_port = 4000;
    r.dst_port = 443;
    r.protocol = 6;
    r.tcp_flags = net::tcp_flags::kAck;
    records.push_back(r);
  }
  std::uint32_t sequence = 100;
  const auto datagrams =
      netflow_export(records, 5 * util::kSecond, sequence);
  ASSERT_EQ(datagrams.size(), 1u);
  EXPECT_EQ(sequence, 103u);
  EXPECT_EQ(datagrams[0].size(),
            kNetflowHeaderSize + 3 * kNetflowRecordSize);
  const auto packet = netflow_collect(datagrams[0]);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->flow_sequence, 100u);
  EXPECT_EQ(packet->sys_uptime_ms, 5000u);
  ASSERT_EQ(packet->records.size(), 3u);
  EXPECT_EQ(packet->records[1].src_addr, 0x0a000002u);
  EXPECT_EQ(packet->records[1].packets, 11u);
  EXPECT_EQ(packet->records[0].protocol, 6);
}

TEST(NetflowExport, SplitsAtThirtyRecords) {
  std::vector<NetflowRecord> records(65);
  std::uint32_t sequence = 0;
  const auto datagrams = netflow_export(records, 0, sequence);
  ASSERT_EQ(datagrams.size(), 3u);  // 30 + 30 + 5.
  EXPECT_EQ(sequence, 65u);
  const auto last = netflow_collect(datagrams[2]);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->records.size(), 5u);
  EXPECT_EQ(last->flow_sequence, 60u);
}

TEST(NetflowCollect, RejectsMalformedDatagrams) {
  EXPECT_FALSE(netflow_collect({}).has_value());
  std::vector<std::uint8_t> short_packet(10, 0);
  EXPECT_FALSE(netflow_collect(short_packet).has_value());
  // Valid length but wrong version.
  std::vector<NetflowRecord> one(1);
  std::uint32_t seq = 0;
  auto datagrams = netflow_export(one, 0, seq);
  datagrams[0][1] = 9;  // Version 9.
  EXPECT_FALSE(netflow_collect(datagrams[0]).has_value());
  // Count/size mismatch.
  auto again = netflow_export(one, 0, seq);
  again[0].push_back(0);
  EXPECT_FALSE(netflow_collect(again[0]).has_value());
}

}  // namespace
}  // namespace patchwork::telemetry
