#include "telemetry/timeseries.hpp"

#include <gtest/gtest.h>

namespace patchwork::telemetry {
namespace {

TEST(TimeSeriesDb, AppendAndRange) {
  TimeSeriesDb db;
  db.append("s", 10, 1.0);
  db.append("s", 20, 2.0);
  db.append("s", 30, 3.0);
  const auto samples = db.range("s", 15, 30);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].time, 20u);
  EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
}

TEST(TimeSeriesDb, RangeOfUnknownSeriesIsEmpty) {
  TimeSeriesDb db;
  EXPECT_TRUE(db.range("nope", 0, 100).empty());
}

TEST(TimeSeriesDb, Latest) {
  TimeSeriesDb db;
  EXPECT_FALSE(db.latest("s").has_value());
  db.append("s", 10, 1.0);
  db.append("s", 50, 9.0);
  const auto latest = db.latest("s");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->time, 50u);
  EXPECT_DOUBLE_EQ(latest->value, 9.0);
}

TEST(TimeSeriesDb, WindowedRateFromCounter) {
  TimeSeriesDb db;
  // A byte counter growing 1000 bytes per second, sampled every second.
  for (int i = 0; i <= 10; ++i) {
    db.append("ctr", static_cast<util::Nanos>(i) * util::kSecond,
              i * 1000.0);
  }
  const auto rate = db.windowed_rate("ctr", 5 * util::kSecond);
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(*rate, 1000.0, 1e-6);
}

TEST(TimeSeriesDb, WindowedRateNeedsTwoSamples) {
  TimeSeriesDb db;
  db.append("ctr", 0, 5.0);
  EXPECT_FALSE(db.windowed_rate("ctr", util::kSecond).has_value());
}

TEST(TimeSeriesDb, WindowedRateUsesOnlyWindow) {
  TimeSeriesDb db;
  // Fast growth long ago, flat recently.
  db.append("ctr", 0, 0.0);
  db.append("ctr", 1 * util::kSecond, 1e9);
  db.append("ctr", 100 * util::kSecond, 1e9);
  db.append("ctr", 101 * util::kSecond, 1e9);
  const auto rate = db.windowed_rate("ctr", 2 * util::kSecond);
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(*rate, 0.0, 1e-6);
}

TEST(TimeSeriesDb, SeriesBookkeeping) {
  TimeSeriesDb db;
  db.append("a", 0, 1.0);
  db.append("b", 0, 1.0);
  db.append("a", 1, 2.0);
  EXPECT_EQ(db.series_count(), 2u);
  EXPECT_EQ(db.sample_count("a"), 2u);
  EXPECT_EQ(db.sample_count("c"), 0u);
  const auto names = db.series_names();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace patchwork::telemetry
