#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace patchwork::sim {
namespace {

TEST(Clock, AdvancesMonotonically) {
  Clock c;
  EXPECT_EQ(c.now(), 0u);
  c.advance_by(10);
  c.advance_to(50);
  EXPECT_EQ(c.now(), 50u);
}

TEST(EventQueue, RunsInTimeOrder) {
  Clock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  Clock clock;
  EventQueue q(clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  Clock clock;
  EventQueue q(clock);
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(100, [&] { ++fired; });
  EXPECT_EQ(q.run_until(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now(), 50u);  // Advanced to the horizon, not past it.
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenEmpty) {
  Clock clock;
  EventQueue q(clock);
  q.run_until(500);
  EXPECT_EQ(clock.now(), 500u);
}

TEST(EventQueue, ScheduleInIsRelative) {
  Clock clock;
  EventQueue q(clock);
  q.schedule_at(40, [] {});
  q.run_all();
  util::Nanos fired_at = 0;
  q.schedule_in(10, [&] { fired_at = clock.now(); });
  q.run_all();
  EXPECT_EQ(fired_at, 50u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  Clock clock;
  EventQueue q(clock);
  int chain = 0;
  q.schedule_at(10, [&] {
    ++chain;
    q.schedule_in(5, [&] { ++chain; });
  });
  EXPECT_EQ(q.run_all(), 2u);
  EXPECT_EQ(chain, 2);
  EXPECT_EQ(clock.now(), 15u);
}

TEST(EventQueue, ScheduleEveryRepeats) {
  Clock clock;
  EventQueue q(clock);
  int ticks = 0;
  q.schedule_every(10, 55, [&] { ++ticks; });
  q.run_all();
  EXPECT_EQ(ticks, 5);  // t = 10, 20, 30, 40, 50.
}

}  // namespace
}  // namespace patchwork::sim
