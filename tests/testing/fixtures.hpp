// Shared helpers for building synthetic captures in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/digest.hpp"
#include "net/frame_builder.hpp"
#include "pcap/pcap.hpp"

namespace patchwork::testing {

inline net::Frame tcp_frame(std::uint8_t host_a, std::uint8_t host_b,
                            std::uint16_t sport, std::uint16_t dport,
                            std::size_t size = 256, util::Nanos ts = 0,
                            std::uint16_t vlan = 100,
                            std::uint8_t flags = net::tcp_flags::kAck |
                                                 net::tcp_flags::kPsh) {
  net::FrameBuilder b;
  b.ethernet(net::MacAddress::from_id(host_a), net::MacAddress::from_id(host_b))
      .vlan(vlan)
      .mpls(16000)
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, host_a),
            net::Ipv4Address::from_octets(10, 0, 0, host_b))
      .tcp(sport, dport, flags)
      .payload(1)
      .pad_to(size);
  return b.build(ts);
}

/// Wrap frames into a RawCapture with a valid pcap stream.
inline analysis::RawCapture make_capture(
    std::string site, std::uint32_t port,
    const std::vector<net::Frame>& frames, util::Nanos start = 0,
    std::uint32_t snaplen = 200) {
  pcap::PcapWriter writer(snaplen);
  for (const net::Frame& f : frames) writer.write(f);
  analysis::RawCapture raw;
  raw.site = std::move(site);
  raw.port = port;
  raw.start = start;
  raw.duration = 20 * util::kSecond;
  raw.pcap = writer.take_buffer();
  return raw;
}

}  // namespace patchwork::testing
