// A ready-to-use simulated FABRIC world for core and integration tests.
#pragma once

#include <memory>

#include "core/environment.hpp"
#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/activity_model.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"

namespace patchwork::testing {

struct World {
  explicit World(std::uint64_t seed = 1,
                 testbed::FederationSpec spec = testbed::FederationSpec())
      : rng(seed),
        fed(testbed::make_fabric_like_federation(rng, spec)),
        mflib(fed),
        traffic(fed, activity,
                traffic::make_site_profiles(rng, fed.site_count()),
                rng.fork()),
        env(clock, fed, mflib, traffic, rng) {}

  /// Prime telemetry so windowed rate queries work: two polls, 5 min apart.
  void warm_up_telemetry() { env.advance(11 * util::kMinute); }

  util::Rng rng;
  sim::Clock clock;
  testbed::ActivityModel activity;
  testbed::Federation fed;
  telemetry::MfLib mflib;
  traffic::TrafficEngine traffic;
  core::Environment env;
};

}  // namespace patchwork::testing
