// End-to-end integration: traffic generation -> port mirroring -> capture
// -> gathering -> full offline analysis pipeline, exactly the Fig. 7 +
// Fig. 9 flow.
#include <gtest/gtest.h>

#include "analysis/pipeline.hpp"
#include "core/coordinator.hpp"
#include "testing/env_fixture.hpp"

namespace patchwork {
namespace {

using patchwork::testing::World;

core::ProfilerConfig e2e_config() {
  core::ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 2;
  config.plan.max_frames_per_sample = 400;
  config.crash_probability = 0.0;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;
  config.capture.snaplen = 200;
  return config;
}

testbed::FederationSpec small_spec() {
  testbed::FederationSpec spec;
  spec.sites = 5;
  return spec;
}

TEST(EndToEnd, ProfileThenAnalyze) {
  World world(11, small_spec());
  world.warm_up_telemetry();
  core::Coordinator coordinator(world.env, e2e_config());
  const core::ProfileRun run = coordinator.run_all_experiment();
  ASSERT_FALSE(run.captures.empty());

  const analysis::ProfileReport report =
      analysis::run_pipeline(run.captures);
  // The pipeline saw real frames with real header stacks.
  EXPECT_GT(report.digest_stats.frames, 100u);
  EXPECT_GT(report.distinct_flows, 10u);
  EXPECT_GT(report.header_occurrence.percent(net::Protocol::kEthernet),
            99.0);
  // Snaplen 200 never cuts into the underlay headers of generated
  // traffic: no malformed frames.
  EXPECT_EQ(report.digest_stats.malformed_frames, 0u);
  // Site variety covers the sampled sites.
  EXPECT_GE(report.site_variety.size(), 2u);
  // Every CSV materialized.
  EXPECT_EQ(report.csv_files.size(), 10u);
}

TEST(EndToEnd, TruncationPreservesHeadersMostOfTheTime) {
  World world(12, small_spec());
  world.warm_up_telemetry();
  core::ProfilerConfig config = e2e_config();
  config.capture.snaplen = 200;  // The paper's profiling truncation.
  core::Coordinator coordinator(world.env, config);
  const core::ProfileRun run = coordinator.run_all_experiment();
  const analysis::ProfileReport report =
      analysis::run_pipeline(run.captures);
  ASSERT_GT(report.digest_stats.frames, 0u);
  // 200 B keeps the full stack for almost all frames (jumbo payloads are
  // cut, headers are not).
  const double truncated_fraction =
      static_cast<double>(report.digest_stats.truncated_frames) /
      static_cast<double>(report.digest_stats.frames);
  EXPECT_LT(truncated_fraction, 0.05);
}

TEST(EndToEnd, AnonymizedProfileStillClassifiesFlows) {
  World world(13, small_spec());
  world.warm_up_telemetry();
  core::ProfilerConfig config = e2e_config();
  config.capture.anonymize = true;
  core::Coordinator coordinator(world.env, config);
  const core::ProfileRun run = coordinator.run_all_experiment();
  const analysis::ProfileReport report =
      analysis::run_pipeline(run.captures);
  EXPECT_GT(report.digest_stats.frames, 0u);
  EXPECT_GT(report.distinct_flows, 5u);
}

TEST(EndToEnd, SwitchCongestionSurfacesInSampleMetadata) {
  World world(14, small_spec());
  // Pin every port of site 0 at line rate: Tx + Rx = 1.55x the 100G
  // mirror egress, the exact oversubscription mode of Section 6.2.2.
  // A base utilization this high pins even the port's between-burst idle
  // level at line rate, so every telemetry window sees Tx+Rx ~ 155G.
  const auto& tor = world.fed.site(testbed::SiteId{0}).tor();
  for (std::uint32_t p = 0; p < tor.port_count(); ++p) {
    world.traffic.set_base_utilization(
        {testbed::SiteId{0}, testbed::PortId{p}}, 100.0);
  }
  world.warm_up_telemetry();
  core::ProfilerConfig config = e2e_config();
  config.plan.cycles = 1;
  config.plan.samples_per_run = 1;
  core::SiteProfiler profiler(world.env, testbed::SiteId{0}, config);
  ASSERT_TRUE(profiler.setup().ok);
  profiler.run();
  // Congestion warnings were logged (inference from telemetry).
  EXPECT_GT(profiler.log().count_containing("congestion"), 0u);
}

TEST(EndToEnd, CongestionMitigationFallsBackToTxOnly) {
  World world(15, small_spec());
  const auto& tor = world.fed.site(testbed::SiteId{0}).tor();
  for (std::uint32_t p = 0; p < tor.port_count(); ++p) {
    world.traffic.set_base_utilization(
        {testbed::SiteId{0}, testbed::PortId{p}}, 100.0);
  }
  world.warm_up_telemetry();
  core::ProfilerConfig config = e2e_config();
  config.plan.cycles = 1;
  config.plan.samples_per_run = 2;
  config.congestion_mitigation = true;
  core::SiteProfiler profiler(world.env, testbed::SiteId{0}, config);
  ASSERT_TRUE(profiler.setup().ok);
  profiler.run();
  EXPECT_GT(profiler.log().count_containing("mitigated"), 0u);
  // The active mirrors ended up Tx-only.
  testbed::Site& site = world.fed.site(testbed::SiteId{0});
  ASSERT_FALSE(site.tor().mirrors().empty());
  for (const testbed::MirrorSession& s : site.tor().mirrors()) {
    EXPECT_EQ(s.directions, testbed::MirrorDirections::kTxOnly);
    // And the oversubscription is resolved.
    EXPECT_DOUBLE_EQ(site.tor().mirror_delivery_fraction(s), 1.0);
  }
  profiler.teardown();
}

}  // namespace
}  // namespace patchwork
