// The tentpole contract of the self-telemetry layer: with instrumentation
// enabled and a congested scenario exercising every watched failure path
// (switch-side mirror oversubscription, capture-ring overflow, allocation
// back-off, pool queueing), all deterministic artifacts — pcaps, CSVs, the
// deterministic exposition, and the manifest's deterministic section — are
// byte-identical at thread counts 0/1/2/8.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "core/coordinator.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "testing/env_fixture.hpp"
#include "util/parallel.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(std::nullopt); }
};

constexpr std::uint64_t kSeed = 2;

ProfilerConfig congested_config() {
  ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 2;
  config.plan.runs_per_cycle = 1;
  config.plan.max_frames_per_sample = 300;
  config.crash_probability = 0.0;
  config.compress_transfers = true;
  // Ask for more instances than the scarce site can grant -> back-off.
  config.desired_instances = 3;
  config.max_backoffs = 5;
  // Default kTcpdump capture: a mirrored 100G-class stream into a
  // single-threaded kernel path guarantees ring-capacity drops.
  return config;
}

obs::ManifestInfo manifest_info() {
  obs::ManifestInfo info;
  info.seed = kSeed;
  info.config = {{"sites", "4"},
                 {"cycles", "2"},
                 {"samples_per_run", "2"},
                 {"capture_method", "tcpdump"}};
  info.notes = {"congested integration scenario"};
  return info;
}

struct RunArtifacts {
  ProfileRun run;
  analysis::ProfileReport report;
  std::string expose_deterministic;
  std::string manifest_deterministic;
};

/// One full run against a fresh congested world: site 0 is made
/// NIC-scarce (forces allocation back-off) and one of its ports carries
/// 60+50 Gbps (forces mirror oversubscription and capture-ring loss once
/// port cycling mirrors the top talker).
RunArtifacts run_congested_world() {
  obs::registry().reset();
  World world(kSeed, [] {
    testbed::FederationSpec spec;
    spec.sites = 8;
    return spec;
  }());

  testbed::Site& site = world.fed.site(testbed::SiteId{0});
  auto nics = site.available_nics(testbed::NicKind::kDedicatedConnectX);
  EXPECT_GE(nics.size(), 2u);
  for (std::size_t i = 0; i + 1 < nics.size(); ++i) {
    site.mutable_nic(nics[i]).allocated_to = testbed::SliceId{999};
  }
  site.tor().mutable_port(testbed::PortId{0}).set_rates(60e9, 50e9);

  world.warm_up_telemetry();

  Coordinator coordinator(world.env, congested_config());
  RunArtifacts out;
  out.run = coordinator.run_on_sites({testbed::SiteId{0}, testbed::SiteId{1},
                                      testbed::SiteId{2},
                                      testbed::SiteId{3}});
  out.report = analysis::run_pipeline(out.run.captures);
  out.expose_deterministic = obs::expose_text(/*deterministic_only=*/true);
  out.manifest_deterministic =
      obs::manifest_deterministic_section(manifest_info());
  return out;
}

std::optional<obs::Registry::SeriesValue> find_series(
    const std::string& name, const std::string& label_fragment = "") {
  for (const obs::Registry::SeriesValue& v :
       obs::registry().snapshot_values()) {
    if (v.name != name) continue;
    if (!label_fragment.empty() &&
        v.labels.find(label_fragment) == std::string::npos) {
      continue;
    }
    return v;
  }
  return std::nullopt;
}

TEST(ObsDeterminism, CongestedRunByteIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;

  util::set_thread_count(0);  // Serial reference.
  const RunArtifacts reference = run_congested_world();
  ASSERT_FALSE(reference.run.captures.empty());

  // The congested scenario lights up every watched metric (checked on the
  // serial run; the counters are deterministic, so any thread count sees
  // the same values).
  const auto ring = find_series("patchwork_capture_dropped_frames_total",
                                "ring_capacity");
  ASSERT_TRUE(ring.has_value());
  EXPECT_GT(ring->count, 0u) << "no capture-ring drops under congestion";
  const auto mirror = find_series("patchwork_mirror_dropped_frames_total");
  ASSERT_TRUE(mirror.has_value());
  EXPECT_GT(mirror->count, 0u) << "no switch-side mirror drops";
  const auto backoffs = find_series("patchwork_profiler_backoffs_total");
  ASSERT_TRUE(backoffs.has_value());
  EXPECT_GT(backoffs->count, 0u) << "no allocation back-off";
  const auto oversub =
      find_series("patchwork_mirror_oversubscribed_intervals_total");
  ASSERT_TRUE(oversub.has_value());
  EXPECT_GT(oversub->count, 0u);

  // The capture inner loop is span-covered per sample window: the kernel
  // path drains the ring, filters, then truncates/anonymizes. Run counts
  // are deterministic (one per sample window), so these families are part
  // of the byte-compared exposition.
  for (const char* stage :
       {"session/drain", "session/filter", "session/anonymize"}) {
    const auto span = find_series("patchwork_stage_runs_total", stage);
    ASSERT_TRUE(span.has_value()) << stage;
    EXPECT_GT(span->count, 0u) << stage;
  }

  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const RunArtifacts parallel = run_congested_world();
    const std::string label = "threads=" + std::to_string(threads);

    // Artifact identity: pcap bytes, CSV bytes, deterministic exposition,
    // deterministic manifest section.
    ASSERT_EQ(reference.run.captures.size(), parallel.run.captures.size())
        << label;
    for (std::size_t i = 0; i < reference.run.captures.size(); ++i) {
      EXPECT_TRUE(reference.run.captures[i].pcap ==
                  parallel.run.captures[i].pcap)
          << label << " pcap " << i << " differs";
    }
    ASSERT_EQ(reference.report.csv_files.size(),
              parallel.report.csv_files.size())
        << label;
    for (const auto& [name, bytes] : reference.report.csv_files) {
      ASSERT_TRUE(parallel.report.csv_files.count(name)) << label << name;
      EXPECT_EQ(bytes, parallel.report.csv_files.at(name))
          << label << " " << name << " differs";
    }
    EXPECT_EQ(reference.expose_deterministic, parallel.expose_deterministic)
        << label << ": deterministic exposition differs";
    EXPECT_EQ(reference.manifest_deterministic,
              parallel.manifest_deterministic)
        << label << ": manifest deterministic section differs";

    if (threads >= 2) {
      // With real workers, the render fan-out must have queued work: the
      // high-water mark samples at enqueue time, so it is >= 1 whenever
      // any task waited behind a worker.
      const auto queue_high =
          find_series("patchwork_pool_queue_depth_high_water");
      ASSERT_TRUE(queue_high.has_value()) << label;
      EXPECT_GT(queue_high->gauge, 0.0) << label;
    }
  }
}

TEST(ObsDeterminism, ManifestWritesNextToProfileOutput) {
  ThreadCountGuard guard;
  util::set_thread_count(2);
  const RunArtifacts artifacts = run_congested_world();

  const std::string path =
      ::testing::TempDir() + "/patchwork_run_manifest.json";
  ASSERT_TRUE(obs::write_manifest(path, manifest_info()));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(path.c_str());

  // The file embeds the deterministic section verbatim, carries the build
  // identity, and separates schedule-dependent data into wall_clock.
  EXPECT_NE(content.find(artifacts.manifest_deterministic),
            std::string::npos);
  EXPECT_NE(content.find("\"git_describe\": "), std::string::npos);
  EXPECT_NE(content.find("\"wall_clock\": {"), std::string::npos);
  EXPECT_NE(content.find("\"thread_count\": 2"), std::string::npos);
  EXPECT_NE(content.find("\"simd_tier\": "), std::string::npos);
  EXPECT_NE(content.find("\"seed\": " + std::to_string(kSeed)),
            std::string::npos);
  EXPECT_NE(content.find("patchwork_profiler_backoffs_total"),
            std::string::npos);
}

}  // namespace
}  // namespace patchwork::core
