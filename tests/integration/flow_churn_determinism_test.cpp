// Event-model determinism contract, CoordinatorDeterminism-style: a full
// coordinator run with the event-driven flow planner (churn on) must
// produce byte-identical pcaps, reports, and deterministic metrics
// exposition at 0/1/2/8 workers, for any render batch size, and on every
// supported SIMD tier. The planner's priority queue runs on the window's
// plan substream and rendering stays counter-addressed, so nothing the
// scheduler does can reach the bytes.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/coordinator.hpp"
#include "flowsched/event_gen.hpp"
#include "obs/metrics.hpp"
#include "testing/env_fixture.hpp"
#include "util/parallel.hpp"
#include "util/philox_simd.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(std::nullopt); }
};

ProfilerConfig event_model_config() {
  ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 2;
  config.plan.runs_per_cycle = 1;
  config.plan.max_frames_per_sample = 300;
  config.crash_probability = 0.0;
  config.desired_instances = 1;
  config.compress_transfers = true;
  config.flow_model.model = flowsched::FlowModel::kEvent;
  config.flow_model.flows_per_second = 30.0;
  config.flow_model.mean_flow_duration_s = 4.0;
  config.flow_model.flow_keys = 64;
  config.flow_model.churn_fpm = 120.0;  // A replacement every 500 ms.
  return config;
}

testbed::FederationSpec wide_spec() {
  testbed::FederationSpec spec;
  spec.sites = 8;
  return spec;
}

struct Artifacts {
  ProfileRun run;
  std::string expose_deterministic;
};

Artifacts run_event_world(std::uint64_t seed,
                          const ProfilerConfig& config) {
  obs::registry().reset();
  World world(seed, wide_spec());
  world.warm_up_telemetry();
  Coordinator coordinator(world.env, config);
  Artifacts out;
  out.run = coordinator.run_all_experiment();
  out.expose_deterministic = obs::expose_text(/*deterministic_only=*/true);
  return out;
}

void expect_runs_identical(const ProfileRun& a, const ProfileRun& b,
                           const std::string& label) {
  ASSERT_EQ(a.reports.size(), b.reports.size()) << label;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const SiteRunReport& ra = a.reports[i];
    const SiteRunReport& rb = b.reports[i];
    EXPECT_EQ(ra.site.value, rb.site.value) << label << " report " << i;
    EXPECT_EQ(ra.outcome, rb.outcome) << label << " report " << i;
    EXPECT_EQ(ra.samples, rb.samples) << label << " report " << i;
    EXPECT_EQ(ra.pcap_bytes, rb.pcap_bytes) << label << " report " << i;
    EXPECT_EQ(ra.transferred_bytes, rb.transferred_bytes)
        << label << " report " << i;
  }
  ASSERT_EQ(a.captures.size(), b.captures.size()) << label;
  for (std::size_t i = 0; i < a.captures.size(); ++i) {
    const analysis::RawCapture& ca = a.captures[i];
    const analysis::RawCapture& cb = b.captures[i];
    EXPECT_EQ(ca.site, cb.site) << label << " capture " << i;
    EXPECT_EQ(ca.port, cb.port) << label << " capture " << i;
    ASSERT_EQ(ca.pcap.size(), cb.pcap.size()) << label << " capture " << i;
    EXPECT_TRUE(ca.pcap == cb.pcap)
        << label << " capture " << i << " pcap bytes differ";
  }
}

TEST(FlowChurnDeterminism, EventModelIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const ProfilerConfig config = event_model_config();

  util::set_thread_count(0);  // Serial reference.
  const Artifacts reference = run_event_world(/*seed=*/11, config);
  ASSERT_FALSE(reference.run.captures.empty());

  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const Artifacts parallel = run_event_world(/*seed=*/11, config);
    const std::string label = "event threads=" + std::to_string(threads);
    expect_runs_identical(reference.run, parallel.run, label);
    EXPECT_EQ(reference.expose_deterministic, parallel.expose_deterministic)
        << label << ": deterministic exposition differs";
  }
}

TEST(FlowChurnDeterminism, EventModelRenderBatchInvariant) {
  ThreadCountGuard guard;

  util::set_thread_count(0);
  ProfilerConfig config = event_model_config();
  config.render_batch_frames = 1024;
  const Artifacts reference = run_event_world(/*seed=*/17, config);
  ASSERT_FALSE(reference.run.captures.empty());

  for (std::size_t batch :
       {std::size_t{1}, std::size_t{17}, std::size_t{4096}}) {
    util::set_thread_count(2);
    config.render_batch_frames = batch;
    const Artifacts rebatched = run_event_world(/*seed=*/17, config);
    const std::string label = "event batch=" + std::to_string(batch);
    expect_runs_identical(reference.run, rebatched.run, label);
    EXPECT_EQ(reference.expose_deterministic,
              rebatched.expose_deterministic)
        << label << ": deterministic exposition differs";
  }
}

TEST(FlowChurnDeterminism, EventModelSimdTierInvariant) {
  ThreadCountGuard guard;
  struct SimdGuard {
    ~SimdGuard() { util::reset_simd_tier(); }
  } simd_guard;

  auto run_tier = [](util::SimdTier tier) {
    ProfilerConfig config = event_model_config();
    config.simd_tier = std::string(util::to_string(tier));
    return run_event_world(/*seed=*/11, config);
  };

  util::set_thread_count(0);
  const Artifacts reference = run_tier(util::SimdTier::kScalar);
  ASSERT_FALSE(reference.run.captures.empty());

  for (util::SimdTier tier : {util::SimdTier::kScalar, util::SimdTier::kSse4,
                              util::SimdTier::kAvx2}) {
    if (!util::simd_tier_supported(tier)) continue;
    for (std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
      util::set_thread_count(threads);
      const Artifacts forced = run_tier(tier);
      const std::string label =
          "event simd=" + std::string(util::to_string(tier)) +
          " threads=" + std::to_string(threads);
      expect_runs_identical(reference.run, forced.run, label);
      EXPECT_EQ(reference.expose_deterministic, forced.expose_deterministic)
          << label << ": deterministic exposition differs";
    }
  }
}

TEST(FlowChurnDeterminism, EventModelRecordsFlowschedMetrics) {
  ThreadCountGuard guard;
  util::set_thread_count(0);
  const Artifacts run = run_event_world(/*seed=*/41, event_model_config());
  ASSERT_FALSE(run.run.captures.empty());
  // The event planner's accounting reaches the deterministic exposition.
  EXPECT_NE(run.expose_deterministic.find(
                "patchwork_flowsched_flows_generated_total"),
            std::string::npos);
  EXPECT_NE(run.expose_deterministic.find(
                "patchwork_flowsched_active_flows_max"),
            std::string::npos);
  EXPECT_NE(run.expose_deterministic.find(
                "patchwork_flowsched_churn_replacements_total"),
            std::string::npos);
}

TEST(FlowChurnDeterminism, EventAndMixModelsDiverge) {
  // Sanity: the knob actually switches planners — same seed, different
  // traffic model, different bytes.
  ThreadCountGuard guard;
  util::set_thread_count(0);
  const Artifacts event_run = run_event_world(/*seed=*/11,
                                              event_model_config());
  ProfilerConfig mix = event_model_config();
  mix.flow_model.model = flowsched::FlowModel::kMix;
  const Artifacts mix_run = run_event_world(/*seed=*/11, mix);
  ASSERT_FALSE(event_run.run.captures.empty());
  ASSERT_FALSE(mix_run.run.captures.empty());
  bool any_differ = event_run.run.captures.size() !=
                    mix_run.run.captures.size();
  for (std::size_t i = 0;
       !any_differ && i < event_run.run.captures.size(); ++i) {
    any_differ = event_run.run.captures[i].pcap !=
                 mix_run.run.captures[i].pcap;
  }
  EXPECT_TRUE(any_differ) << "event model rendered the mix model's bytes";
}

}  // namespace
}  // namespace patchwork::core
