// Fidelity checks: does a testbed-wide profile gathered by Patchwork on
// the simulated federation reproduce the *shape* of the paper's Section
// 8.2 findings? Tolerances are loose — these guard the calibration, not
// exact numbers.
#include <gtest/gtest.h>

#include "analysis/pipeline.hpp"
#include "core/coordinator.hpp"
#include "testing/env_fixture.hpp"

namespace patchwork {
namespace {

using patchwork::testing::World;

/// One shared profile for all fidelity checks (gathering is the slow
/// part; the assertions are independent reads of the same report).
class ProfileFidelity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(1234);
    world_->warm_up_telemetry();
    core::ProfilerConfig config;
    config.plan.cycles = 3;
    config.plan.samples_per_run = 2;
    config.plan.max_frames_per_sample = 800;
    config.crash_probability = 0.0;
    config.capture.method = capture::CaptureMethod::kFpgaDpdk;
    config.capture.cores = 5;
    config.capture.snaplen = 200;
    core::Coordinator coordinator(world_->env, config);
    run_ = new core::ProfileRun(coordinator.run_all_experiment());
    report_ = new analysis::ProfileReport(
        analysis::run_pipeline(run_->captures));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete run_;
    delete world_;
    report_ = nullptr;
    run_ = nullptr;
    world_ = nullptr;
  }

  static World* world_;
  static core::ProfileRun* run_;
  static analysis::ProfileReport* report_;
};

World* ProfileFidelity::world_ = nullptr;
core::ProfileRun* ProfileFidelity::run_ = nullptr;
analysis::ProfileReport* ProfileFidelity::report_ = nullptr;

TEST_F(ProfileFidelity, ProfileIsSubstantial) {
  ASSERT_NE(report_, nullptr);
  EXPECT_GT(report_->digest_stats.frames, 10000u);
  EXPECT_GT(report_->site_variety.size(), 15u);
}

TEST_F(ProfileFidelity, JumboBucketDominatesFrameSizes) {
  // Section 8.2: 1519-2047 B frames are 74.7% of FABRIC traffic; the
  // small-ACK bucket 65-127 B is second at 14.15%.
  const double jumbo = report_->frame_sizes.fraction_in(1519);
  const double acks = report_->frame_sizes.fraction_in(65);
  EXPECT_GT(jumbo, 0.45);
  EXPECT_GT(acks, 0.05);
  EXPECT_GT(jumbo, acks);
  // Those two buckets together dominate.
  EXPECT_GT(jumbo + acks, 0.6);
}

TEST_F(ProfileFidelity, Ipv4DominatesIpv6) {
  // Finding B6: IPv6 is < ~2% of frames (we allow a loose band).
  const double ipv4 =
      report_->header_occurrence.percent(net::Protocol::kIpv4);
  const double ipv6 =
      report_->header_occurrence.percent(net::Protocol::kIpv6);
  EXPECT_GT(ipv4, 80.0);
  EXPECT_LT(ipv6, 6.0);
  EXPECT_GT(ipv4, 20.0 * std::max(ipv6, 0.1));
}

TEST_F(ProfileFidelity, TcpDominatesTransport) {
  const double tcp = report_->header_occurrence.percent(net::Protocol::kTcp);
  const double udp = report_->header_occurrence.percent(net::Protocol::kUdp);
  EXPECT_GT(tcp, udp);
  EXPECT_GT(tcp, 50.0);
}

TEST_F(ProfileFidelity, MostTrafficIsTagged) {
  // Fig. 12: most traffic is tagged using VLAN, MPLS, or both.
  const auto& tagging = report_->tagging;
  ASSERT_GT(tagging.frames, 0u);
  const double tagged_fraction =
      1.0 - static_cast<double>(tagging.untagged) /
                static_cast<double>(tagging.frames);
  EXPECT_GT(tagged_fraction, 0.8);
}

TEST_F(ProfileFidelity, DeepestStacksBetween5And12) {
  // Fig. 11 (y2): maximal header prefixes of 6-12 headers per site.
  for (const auto& site : report_->site_variety) {
    EXPECT_GE(site.deepest_stack, 4u) << site.site;
    EXPECT_LE(site.deepest_stack, 12u) << site.site;
  }
  // At least one site reaches the deep-encapsulation regime.
  std::size_t deepest = 0;
  for (const auto& site : report_->site_variety) {
    deepest = std::max(deepest, site.deepest_stack);
  }
  EXPECT_GE(deepest, 8u);
}

TEST_F(ProfileFidelity, SitesShowDiverseHeaderVariety) {
  // Fig. 11 (y1) / finding B2: "most FABRIC sites exhibit a low variety
  // of protocols in their traffic, but some sites use many types".
  std::size_t lo = 1000, hi = 0;
  for (const auto& site : report_->site_variety) {
    lo = std::min(lo, site.distinct_headers);
    hi = std::max(hi, site.distinct_headers);
  }
  EXPECT_LT(lo, hi);
  EXPECT_GE(hi, lo + 3);
}

TEST_F(ProfileFidelity, FlowCountsPerSampleSpreadWidely) {
  // Fig. 13: most samples have modest flow counts, some have many. The
  // rendered-frame cap compresses absolute counts; check the spread.
  std::size_t lo = SIZE_MAX, hi = 0;
  for (const auto& s : report_->flows_per_sample) {
    lo = std::min(lo, s.flows);
    hi = std::max(hi, s.flows);
  }
  EXPECT_LT(lo * 4, hi);  // At least a 4x spread across samples.
}

TEST_F(ProfileFidelity, PureAcksArePresent) {
  // The minimum-size frames the paper sees are payload-free ACKs.
  EXPECT_GT(report_->tcp_control.pure_ack, 0u);
  EXPECT_GT(report_->tcp_control.tcp_frames,
            report_->tcp_control.pure_ack);
}

TEST_F(ProfileFidelity, DeploymentMostlySucceeds) {
  // Fig. 10: ~79% success over the deployment period; a single run with
  // no induced failures should be >= that.
  EXPECT_GT(run_->success_fraction(), 0.7);
}

}  // namespace
}  // namespace patchwork
