// The archive's determinism contract: the bytes appended for one profiling
// run — and the bytes a compaction rewrites — are identical whether the
// pipeline ran serially or on any number of workers. Epoch extraction
// inserts flows in canonical key order and every archived field is a
// deterministic reduction, so the encoded record cannot see the schedule.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "analysis/epoch_extract.hpp"
#include "analysis/pipeline.hpp"
#include "archive/compactor.hpp"
#include "archive/writer.hpp"
#include "core/coordinator.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "testing/env_fixture.hpp"
#include "util/parallel.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(std::nullopt); }
};

constexpr std::uint64_t kSeed = 20260805;

ProfilerConfig small_config() {
  ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 2;
  config.plan.runs_per_cycle = 1;
  config.plan.max_frames_per_sample = 400;
  config.crash_probability = 0.0;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 4;
  config.capture.snaplen = 200;
  return config;
}

/// One full profile -> epoch-record cycle on a fresh world; returns the
/// rendered archive image for two appended epochs.
std::vector<std::uint8_t> archive_image_for_run() {
  obs::registry().reset();
  World world(kSeed);
  world.warm_up_telemetry();

  std::vector<archive::EpochRecord> records;
  for (int epoch = 0; epoch < 2; ++epoch) {
    Coordinator coordinator(world.env, small_config());
    const ProfileRun run = coordinator.run_on_sites(
        {testbed::SiteId{0}, testbed::SiteId{1}, testbed::SiteId{2}});
    const analysis::ProfileReport report =
        analysis::run_pipeline(run.captures);

    obs::ManifestInfo info;
    info.seed = kSeed;
    info.config = {{"epoch", std::to_string(epoch)}, {"sites", "3"}};
    analysis::EpochMeta meta;
    meta.label = "epoch" + std::to_string(epoch);
    meta.start = world.env.clock().now();
    meta.duration = util::kDay;
    meta.offered_bps =
        world.env.mflib().testbed_total_tx_bps(30 * util::kMinute);
    meta.manifest_json = obs::manifest_deterministic_section(info);
    archive::EpochRecord record =
        analysis::extract_epoch_record(report, meta);
    record.first_epoch = record.last_epoch =
        static_cast<std::uint64_t>(epoch);
    records.push_back(std::move(record));
    world.env.advance(util::kDay);
  }
  return archive::render_archive(records);
}

TEST(ArchiveDeterminism, ArchiveBytesIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;

  util::set_thread_count(0);  // Serial reference.
  const std::vector<std::uint8_t> reference = archive_image_for_run();
  ASSERT_GT(reference.size(), archive::kFileHeaderSize);

  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const std::vector<std::uint8_t> image = archive_image_for_run();
    EXPECT_EQ(reference, image)
        << "archive bytes differ at threads=" << threads;
  }
}

TEST(ArchiveDeterminism, CompactionDeterministicAcrossThreadCounts) {
  ThreadCountGuard guard;

  // Build a pile of synthetic records large enough for several groups.
  std::vector<archive::EpochRecord> records;
  for (std::uint64_t n = 0; n < 16; ++n) {
    archive::EpochRecord r;
    r.first_epoch = r.last_epoch = n;
    r.label = "e" + std::to_string(n);
    r.start_nanos = n * 100;
    r.duration_nanos = 100;
    r.frames = 100 + n;
    r.frame_sizes.edges = {64, 1519};
    r.frame_sizes.counts = {n};
    archive::TopFlowSketch sketch(4);
    for (std::uint64_t i = 0; i < 6; ++i) {
      sketch.insert("f" + std::to_string((n + i) % 9), 10 * (n + i + 1));
    }
    r.top_flows = std::move(sketch);
    records.push_back(std::move(r));
  }
  archive::CompactionOptions options;
  options.storage_budget_bytes = 1;  // Fold as far as possible.
  options.group_size = 3;

  util::set_thread_count(0);
  const auto serial = archive::compact_records(records, options);
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const auto parallel = archive::compact_records(records, options);
    EXPECT_EQ(archive::render_archive(serial),
              archive::render_archive(parallel))
        << "compaction differs at threads=" << threads;
  }
}

}  // namespace
}  // namespace patchwork::core
