// Flight-recorder contract over a real congested run: the set of complete
// stage events (names and counts) is a pure function of the seeded work —
// identical at 0/2/8 workers — and tracing never perturbs the deterministic
// artifacts (pcap bytes, deterministic exposition). Ring overflow under a
// deliberately tiny capacity is counted, never blocking.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/coordinator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testing/env_fixture.hpp"
#include "util/parallel.hpp"

namespace patchwork::core {
namespace {

using patchwork::testing::World;

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(std::nullopt); }
};

struct TraceGuard {
  ~TraceGuard() { obs::trace::reset(); }
};

constexpr std::uint64_t kSeed = 2;

ProfilerConfig congested_config() {
  ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 2;
  config.plan.runs_per_cycle = 1;
  config.plan.max_frames_per_sample = 300;
  config.crash_probability = 0.0;
  config.compress_transfers = true;
  config.desired_instances = 3;
  config.max_backoffs = 5;
  return config;
}

struct TracedRun {
  ProfileRun run;
  std::string expose_deterministic;
  /// Complete ('X') event name -> occurrence count across all lanes.
  std::map<std::string, std::size_t> complete_events;
  std::uint64_t drops = 0;
};

/// Same congested world as obs_determinism_test: site 0 NIC-scarce with an
/// oversubscribed mirror port, sampled across four sites.
TracedRun run_congested_world(std::optional<std::size_t> trace_capacity) {
  obs::registry().reset();
  obs::trace::reset();
  World world(kSeed, [] {
    testbed::FederationSpec spec;
    spec.sites = 8;
    return spec;
  }());

  testbed::Site& site = world.fed.site(testbed::SiteId{0});
  auto nics = site.available_nics(testbed::NicKind::kDedicatedConnectX);
  for (std::size_t i = 0; i + 1 < nics.size(); ++i) {
    site.mutable_nic(nics[i]).allocated_to = testbed::SliceId{999};
  }
  site.tor().mutable_port(testbed::PortId{0}).set_rates(60e9, 50e9);
  world.warm_up_telemetry();

  if (trace_capacity) obs::trace::start(*trace_capacity);

  Coordinator coordinator(world.env, congested_config());
  TracedRun out;
  out.run = coordinator.run_on_sites({testbed::SiteId{0}, testbed::SiteId{1},
                                      testbed::SiteId{2},
                                      testbed::SiteId{3}});
  out.expose_deterministic = obs::expose_text(/*deterministic_only=*/true);

  if (trace_capacity) {
    obs::trace::stop();
    out.drops = obs::trace::dropped_events();
    for (const obs::trace::LaneEvent& le : obs::trace::snapshot_events()) {
      // Only complete stage/burst events are seeded-work-determined;
      // instants (task_steal markers) are scheduling artifacts by design.
      if (le.event.phase == 'X') ++out.complete_events[le.event.name];
    }
  }
  return out;
}

TEST(TraceDeterminism, CompleteEventSetIdenticalAcrossWorkerCounts) {
  ThreadCountGuard thread_guard;
  TraceGuard trace_guard;

  util::set_thread_count(0);  // Serial reference.
  const TracedRun reference =
      run_congested_world(obs::trace::kDefaultCapacity);
  ASSERT_FALSE(reference.run.captures.empty());
  EXPECT_EQ(reference.drops, 0u)
      << "default capacity must hold the whole congested run";

  // The recorder saw the instrumented stages, including per-burst units.
  for (const char* stage : {"render/compress", "profiler/render_sample",
                            "render/synthesis", "render/capture",
                            "render_unit"}) {
    ASSERT_TRUE(reference.complete_events.count(stage)) << stage;
    EXPECT_GT(reference.complete_events.at(stage), 0u) << stage;
  }

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const TracedRun parallel =
        run_congested_world(obs::trace::kDefaultCapacity);
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(parallel.drops, 0u) << label;
    // Names and per-name counts match exactly; only timestamps and lane
    // assignment may differ with scheduling.
    EXPECT_EQ(reference.complete_events, parallel.complete_events) << label;
    EXPECT_EQ(reference.expose_deterministic, parallel.expose_deterministic)
        << label << ": deterministic exposition differs with tracing on";
  }
}

TEST(TraceDeterminism, TracingDoesNotPerturbArtifacts) {
  ThreadCountGuard thread_guard;
  TraceGuard trace_guard;
  util::set_thread_count(2);

  const TracedRun untraced = run_congested_world(std::nullopt);
  const TracedRun traced = run_congested_world(obs::trace::kDefaultCapacity);

  ASSERT_EQ(untraced.run.captures.size(), traced.run.captures.size());
  for (std::size_t i = 0; i < untraced.run.captures.size(); ++i) {
    EXPECT_TRUE(untraced.run.captures[i].pcap == traced.run.captures[i].pcap)
        << "pcap " << i << " differs with tracing enabled";
  }
  EXPECT_EQ(untraced.expose_deterministic, traced.expose_deterministic)
      << "deterministic exposition differs with tracing enabled";
}

TEST(TraceDeterminism, TinyRingsDropAndCountInsteadOfBlocking) {
  ThreadCountGuard thread_guard;
  TraceGuard trace_guard;
  util::set_thread_count(4);

  // 8 slots per lane cannot hold a congested 4-site run; the run must
  // still complete (overwrite-oldest, wait-free) with drops accounted.
  const TracedRun tiny = run_congested_world(std::size_t{8});
  ASSERT_FALSE(tiny.run.captures.empty());
  EXPECT_GT(tiny.drops, 0u);
  std::size_t retained = 0;
  for (const auto& [name, count] : tiny.complete_events) retained += count;
  EXPECT_GT(retained, 0u);
  // The wall-clock drop counter is visible in the full exposition but is
  // excluded from the deterministic view.
  EXPECT_NE(obs::expose_text(false).find(
                "patchwork_trace_dropped_events_total"),
            std::string::npos);
  EXPECT_EQ(tiny.expose_deterministic.find(
                "patchwork_trace_dropped_events_total"),
            std::string::npos);
}

}  // namespace
}  // namespace patchwork::core
