#include "analysis/pipeline.hpp"

#include <gtest/gtest.h>

#include "testing/fixtures.hpp"

namespace patchwork::analysis {
namespace {

using patchwork::testing::make_capture;
using patchwork::testing::tcp_frame;

std::vector<RawCapture> sample_profile() {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1000, 443, 1900), tcp_frame(2, 1, 443, 1000, 70)}));
  captures.push_back(
      make_capture("S2", 3, {tcp_frame(3, 4, 2000, 5201, 2000)},
                   10 * util::kMinute));
  return captures;
}

TEST(Pipeline, RunsAllStages) {
  const ProfileReport report = run_pipeline(sample_profile());
  EXPECT_EQ(report.digest_stats.frames, 3u);
  EXPECT_EQ(report.frame_sizes.frames, 3u);
  EXPECT_EQ(report.site_variety.size(), 2u);
  EXPECT_EQ(report.flows_per_sample.size(), 2u);
  EXPECT_EQ(report.distinct_flows, 2u);
  EXPECT_GT(report.largest_flow_bytes, 1900u);
  EXPECT_GT(report.tcp_control.tcp_frames, 0u);
  EXPECT_EQ(report.tagging.frames, 3u);
}

TEST(Pipeline, EmitsEveryCsv) {
  const ProfileReport report = run_pipeline(sample_profile());
  for (const char* name :
       {"frame_sizes.csv", "site_frame_sizes.csv", "header_occurrence.csv",
        "site_variety.csv", "flows_per_sample.csv", "flow_aggregate.csv",
        "tcp_control.csv", "tagging.csv", "top_stacks.csv",
        "flow_distribution.csv"}) {
    ASSERT_TRUE(report.csv_files.count(name)) << name;
    EXPECT_FALSE(report.csv_files.at(name).empty()) << name;
  }
}

TEST(Pipeline, EmptyProfileIsHarmless) {
  const ProfileReport report = run_pipeline({});
  EXPECT_EQ(report.digest_stats.frames, 0u);
  EXPECT_EQ(report.distinct_flows, 0u);
  EXPECT_EQ(report.csv_files.size(), 10u);
}

TEST(Pipeline, DigestProfileExposesFiles) {
  const DigestedProfile digested = digest_profile(sample_profile());
  EXPECT_EQ(digested.files.size(), 2u);
  EXPECT_EQ(digested.stats.frames, 3u);
}

}  // namespace
}  // namespace patchwork::analysis
