#include "analysis/digest.hpp"

#include <gtest/gtest.h>

#include "testing/fixtures.hpp"

namespace patchwork::analysis {
namespace {

using testing::make_capture;
using testing::tcp_frame;

TEST(Digest, ProducesOneRecordPerFrame) {
  const auto capture = make_capture(
      "S1", 4, {tcp_frame(1, 2, 100, 200), tcp_frame(3, 4, 300, 400)});
  DigestStats stats;
  const AcapFile file = digest(capture, &stats);
  EXPECT_EQ(file.records.size(), 2u);
  EXPECT_EQ(stats.frames, 2u);
  EXPECT_EQ(file.site, "S1");
  EXPECT_EQ(file.port, 4u);
}

TEST(Digest, PreservesSampleMetadata) {
  auto capture = make_capture("S2", 7, {tcp_frame(1, 2, 1, 2)},
                              5 * util::kMinute);
  capture.switch_drops_suspected = 42;
  const AcapFile file = digest(capture);
  EXPECT_EQ(file.start, 5 * util::kMinute);
  EXPECT_EQ(file.duration, 20 * util::kSecond);
  EXPECT_EQ(file.switch_drops_suspected, 42u);
}

TEST(Digest, RecordsKeepWireLengthDespiteTruncation) {
  const auto capture =
      make_capture("S1", 0, {tcp_frame(1, 2, 1, 2, 1514)}, 0, /*snaplen=*/64);
  const AcapFile file = digest(capture);
  ASSERT_EQ(file.records.size(), 1u);
  EXPECT_EQ(file.records[0].wire_length, 1514u);
  EXPECT_EQ(file.records[0].captured_length, 64u);
}

TEST(Digest, CountsTruncatedFrames) {
  // A 64 B snaplen slices into the TCP header of this stack (14 + 4 + 4 +
  // 20 = 42 bytes before TCP; TCP needs 20 more and payload follows).
  const auto capture =
      make_capture("S1", 0, {tcp_frame(1, 2, 1, 2, 1514)}, 0, /*snaplen=*/50);
  DigestStats stats;
  digest(capture, &stats);
  EXPECT_EQ(stats.truncated_frames, 1u);
}

TEST(Digest, InvalidPcapCountsBadRecords) {
  RawCapture bogus;
  bogus.site = "S1";
  bogus.pcap = {1, 2, 3, 4};
  DigestStats stats;
  const AcapFile file = digest(bogus, &stats);
  EXPECT_TRUE(file.records.empty());
  EXPECT_EQ(stats.bad_records, 1u);
}

TEST(Digest, DigestAllAggregates) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture("S1", 0, {tcp_frame(1, 2, 1, 2)}));
  captures.push_back(make_capture("S2", 1, {tcp_frame(3, 4, 5, 6),
                                            tcp_frame(5, 6, 7, 8)}));
  DigestStats stats;
  const auto files = digest_all(captures, &stats);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(stats.frames, 3u);
}

TEST(Digest, StatsPointerIsOptional) {
  const auto capture = make_capture("S1", 0, {tcp_frame(1, 2, 1, 2)});
  EXPECT_EQ(digest(capture).records.size(), 1u);  // No crash without stats.
}

}  // namespace
}  // namespace patchwork::analysis
