// Sharded two-phase flow aggregation contract: aggregate_flows() must
// produce exactly the same map — every key, every field — whether it runs
// as the serial single-map fallback or as the sharded parallel path, at
// any thread count. Shard assignment is keyed by FlowKeyHash % kShards and
// every FlowAggregate field merges commutatively, so the content cannot
// depend on chunking or scheduling.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "analysis/analyses.hpp"
#include "analysis/digest.hpp"
#include "testing/fixtures.hpp"
#include "util/parallel.hpp"

namespace patchwork::analysis {
namespace {

using patchwork::testing::make_capture;
using patchwork::testing::tcp_frame;

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(std::nullopt); }
};

/// Many files, many sites, flows recurring across samples so cross-sample
/// stitching (samples counting, first/last_seen spans) has real work.
std::vector<AcapFile> stitched_profile() {
  std::vector<RawCapture> captures;
  for (int site = 0; site < 5; ++site) {
    for (int sample = 0; sample < 4; ++sample) {
      std::vector<net::Frame> frames;
      for (int f = 0; f < 60 + site * 11 + sample * 5; ++f) {
        const auto a = static_cast<std::uint8_t>(1 + (f + site) % 7);
        const auto b = static_cast<std::uint8_t>(8 + f % 5);
        frames.push_back(tcp_frame(
            a, b, static_cast<std::uint16_t>(1000 + f % 17),
            static_cast<std::uint16_t>(f % 3 ? 443 : 8080),
            64 + static_cast<std::size_t>((f * 131) % 1400),
            static_cast<util::Nanos>(f) * util::kMillisecond,
            static_cast<std::uint16_t>(200 + site)));
      }
      captures.push_back(make_capture("S" + std::to_string(site),
                                      static_cast<std::uint32_t>(sample),
                                      frames,
                                      sample * 7 * util::kMinute));
    }
  }
  return digest_all(captures, nullptr);
}

void expect_flow_maps_equal(
    const std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash>& a,
    const std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash>& b,
    const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (const auto& [key, agg] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end()) << label << ": missing " << key.to_string();
    EXPECT_EQ(agg.frames, it->second.frames) << label << key.to_string();
    EXPECT_EQ(agg.wire_bytes, it->second.wire_bytes)
        << label << key.to_string();
    EXPECT_EQ(agg.first_seen, it->second.first_seen)
        << label << key.to_string();
    EXPECT_EQ(agg.last_seen, it->second.last_seen)
        << label << key.to_string();
    EXPECT_EQ(agg.rst_frames, it->second.rst_frames)
        << label << key.to_string();
    EXPECT_EQ(agg.samples, it->second.samples) << label << key.to_string();
  }
}

TEST(AggregateShards, ShardedMatchesSingleMapAtEveryThreadCount) {
  ThreadCountGuard guard;
  const std::vector<AcapFile> files = stitched_profile();
  ASSERT_GT(files.size(), 1u);

  util::set_thread_count(0);  // Serial single-map reference.
  const auto reference = aggregate_flows(files);
  EXPECT_GT(reference.size(), 1u);

  for (std::size_t threads :
       {std::size_t{2}, std::size_t{3}, std::size_t{8}, std::size_t{32}}) {
    util::set_thread_count(threads);
    const auto sharded = aggregate_flows(files);
    expect_flow_maps_equal(reference, sharded,
                           "threads=" + std::to_string(threads) + " ");
  }
}

TEST(AggregateShards, SingleFileFallsBackToSerial) {
  ThreadCountGuard guard;
  std::vector<AcapFile> files = stitched_profile();
  files.resize(1);
  util::set_thread_count(0);
  const auto serial = aggregate_flows(files);
  util::set_thread_count(8);
  const auto parallel = aggregate_flows(files);
  expect_flow_maps_equal(serial, parallel, "single-file ");
}

TEST(AggregateShards, MoreThreadsThanFiles) {
  ThreadCountGuard guard;
  std::vector<AcapFile> files = stitched_profile();
  files.resize(3);
  util::set_thread_count(0);
  const auto serial = aggregate_flows(files);
  util::set_thread_count(16);  // chunks must clamp to files.size().
  const auto sharded = aggregate_flows(files);
  expect_flow_maps_equal(serial, sharded, "clamped-chunks ");
}

}  // namespace
}  // namespace patchwork::analysis
