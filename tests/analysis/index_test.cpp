#include "analysis/index.hpp"

#include <gtest/gtest.h>

#include "analysis/digest.hpp"
#include "testing/fixtures.hpp"

namespace patchwork::analysis {
namespace {

using patchwork::testing::make_capture;
using patchwork::testing::tcp_frame;

std::vector<AcapFile> sample_files() {
  std::vector<RawCapture> captures;
  captures.push_back(
      make_capture("S1", 0, {tcp_frame(1, 2, 100, 443)}, 0));
  captures.push_back(
      make_capture("S1", 1, {tcp_frame(1, 2, 100, 53)}, 10 * util::kMinute));
  captures.push_back(
      make_capture("S2", 0, {tcp_frame(3, 4, 100, 22)}, 5 * util::kMinute));
  return digest_all(captures);
}

TEST(ProfileIndex, BySiteIsTimeOrdered) {
  const auto files = sample_files();
  ProfileIndex index(files);
  const auto s1 = index.by_site("S1");
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_LT(files[s1[0]].start, files[s1[1]].start);
  EXPECT_EQ(index.by_site("S2").size(), 1u);
  EXPECT_TRUE(index.by_site("S9").empty());
}

TEST(ProfileIndex, ByTimeIntersectsIntervals) {
  const auto files = sample_files();
  ProfileIndex index(files);
  // Only the t=0 sample overlaps [0, 20s).
  EXPECT_EQ(index.by_time(0, 20 * util::kSecond).size(), 1u);
  // All three overlap the full range.
  EXPECT_EQ(index.by_time(0, util::kHour).size(), 3u);
  EXPECT_TRUE(index.by_time(2 * util::kHour, 3 * util::kHour).empty());
}

TEST(ProfileIndex, ByProtocolUsesDissectedStacks) {
  const auto files = sample_files();
  ProfileIndex index(files);
  // Every sample carries TCP.
  EXPECT_EQ(index.by_protocol(net::Protocol::kTcp).size(), 3u);
  // Nothing carries ICMP.
  EXPECT_TRUE(index.by_protocol(net::Protocol::kIcmp).empty());
}

TEST(ProfileIndex, CombinedQuery) {
  const auto files = sample_files();
  ProfileIndex index(files);
  const auto hits = index.query("S1", 0, util::kHour, net::Protocol::kTcp);
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(
      index.query("S1", 0, util::kHour, net::Protocol::kIcmp).empty());
}

TEST(ProfileIndex, SitesEnumerated) {
  const auto files = sample_files();
  ProfileIndex index(files);
  const auto sites = index.sites();
  EXPECT_EQ(sites.size(), 2u);
  EXPECT_EQ(index.file_count(), 3u);
}

}  // namespace
}  // namespace patchwork::analysis
