#include "analysis/analyses.hpp"

#include <gtest/gtest.h>

#include "analysis/digest.hpp"
#include "net/frame_builder.hpp"
#include "testing/fixtures.hpp"
#include "util/stats.hpp"

namespace patchwork::analysis {
namespace {

using patchwork::testing::make_capture;
using patchwork::testing::tcp_frame;

TEST(FrameSizes, PaperBucketsCoverInterestingRanges) {
  const auto edges = paper_frame_size_edges();
  ASSERT_GE(edges.size(), 3u);
  EXPECT_EQ(edges.front(), 64);
  // The jumbo-dominant bucket 1519-2047 must exist.
  EXPECT_NE(std::find(edges.begin(), edges.end(), 1519.0), edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(), 2048.0), edges.end());
}

TEST(FrameSizes, CountsByWireLength) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1, 2, 1900), tcp_frame(1, 2, 1, 2, 1900),
       tcp_frame(1, 2, 1, 2, 70), tcp_frame(1, 2, 1, 2, 300)}));
  const auto files = digest_all(captures);
  const FrameSizeResult result = analyze_frame_sizes(files);
  EXPECT_EQ(result.frames, 4u);
  EXPECT_DOUBLE_EQ(result.fraction_in(1519), 0.5);
  EXPECT_DOUBLE_EQ(result.fraction_in(65), 0.25);
  EXPECT_DOUBLE_EQ(result.fraction_in(256), 0.25);
  EXPECT_DOUBLE_EQ(result.jumbo_fraction(), 0.5);
}

TEST(FrameSizes, PerSiteFiltering) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture("S1", 0, {tcp_frame(1, 2, 1, 2, 2000)}));
  captures.push_back(make_capture("S2", 0, {tcp_frame(1, 2, 1, 2, 80)}));
  const auto files = digest_all(captures);
  EXPECT_DOUBLE_EQ(analyze_frame_sizes_site(files, "S1").jumbo_fraction(),
                   1.0);
  EXPECT_DOUBLE_EQ(analyze_frame_sizes_site(files, "S2").jumbo_fraction(),
                   0.0);
}

TEST(HeaderOccurrence, EthernetCanExceedHundredPercent) {
  // Fig. 12: "Ethernet exceeds 100% because Ethernet frames often carry
  // other Ethernet frames."
  net::FrameBuilder b;
  b.ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .mpls(16000)
      .pseudowire()
      .ethernet(net::MacAddress::from_id(3), net::MacAddress::from_id(4))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .tcp(1, 2)
      .payload(10);
  std::vector<RawCapture> captures;
  captures.push_back(make_capture("S1", 0, {b.build()}));
  const auto files = digest_all(captures);
  const HeaderOccurrenceResult result = analyze_header_occurrence(files);
  EXPECT_DOUBLE_EQ(result.percent(net::Protocol::kEthernet), 200.0);
  EXPECT_DOUBLE_EQ(result.percent(net::Protocol::kIpv4), 100.0);
  EXPECT_DOUBLE_EQ(result.percent(net::Protocol::kIcmp), 0.0);
}

TEST(SiteVariety, CountsDistinctHeadersAndDepth) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1, 443), tcp_frame(1, 2, 1, 5201)}));
  const auto files = digest_all(captures);
  const auto variety = analyze_site_header_variety(files);
  ASSERT_EQ(variety.size(), 1u);
  // eth, vlan, mpls, ipv4, tcp (+payload protocols excluded from depth but
  // counted as distinct headers when recognized).
  EXPECT_GE(variety[0].distinct_headers, 5u);
  EXPECT_EQ(variety[0].deepest_stack, 5u);
  EXPECT_EQ(variety[0].site, "S1");
}

TEST(FlowsPerSample, DistinctFlowCount) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1000, 443), tcp_frame(1, 2, 1000, 443),
       tcp_frame(2, 1, 443, 1000),  // Reverse direction: same flow.
       tcp_frame(3, 4, 5, 6)}));
  const auto files = digest_all(captures);
  const auto counts = analyze_flows_per_sample(files);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].flows, 2u);
}

TEST(FlowAggregate, StitchesAcrossSamples) {
  // "We also analyzed across samples to piece together flow snippets."
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1000, 443, 500, 0)}, 0));
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1000, 443, 700, util::kSecond)},
      10 * util::kMinute));
  const auto files = digest_all(captures);
  const auto flows = aggregate_flows(files);
  ASSERT_EQ(flows.size(), 1u);
  const FlowAggregate& agg = flows.begin()->second;
  EXPECT_EQ(agg.frames, 2u);
  EXPECT_EQ(agg.wire_bytes, 1200u);
  EXPECT_EQ(agg.samples, 2u);
  EXPECT_GT(agg.last_seen, agg.first_seen);
}

TEST(FlowAggregate, RstCounting) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1, 2, 256, 0, 100, net::tcp_flags::kRst),
       tcp_frame(1, 2, 1, 2, 256, 1, 100)}));
  const auto files = digest_all(captures);
  const auto flows = aggregate_flows(files);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows.begin()->second.rst_frames, 1u);
}

TEST(TcpControl, ClassifiesFlags) {
  net::FrameBuilder ack;
  ack.ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .tcp(1, 2, net::tcp_flags::kAck);  // Pure ACK, no payload.
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1, 2, 256, 0, 100, net::tcp_flags::kSyn),
       tcp_frame(1, 2, 1, 2, 256, 0, 100,
                 net::tcp_flags::kFin | net::tcp_flags::kAck),
       tcp_frame(1, 2, 1, 2, 256, 0, 100, net::tcp_flags::kRst),
       ack.build()}));
  const auto files = digest_all(captures);
  const TcpControlResult result = analyze_tcp_control(files);
  EXPECT_EQ(result.tcp_frames, 4u);
  EXPECT_EQ(result.syn, 1u);
  EXPECT_EQ(result.fin, 1u);
  EXPECT_EQ(result.rst, 1u);
  EXPECT_EQ(result.pure_ack, 1u);
}

TEST(FlowDistribution, BucketsSizesAndDurations) {
  std::vector<RawCapture> captures;
  // One two-frame flow spanning two samples 10 minutes apart, one tiny
  // single-frame flow.
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1000, 443, 600, 0)}, 0));
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1000, 443, 600, 0),
                tcp_frame(3, 4, 5, 6, 70, 0)},
      10 * util::kMinute));
  const auto files = digest_all(captures);
  const auto result = analyze_flow_distribution(aggregate_flows(files));
  EXPECT_EQ(result.flows, 2u);
  EXPECT_EQ(result.largest_flow_bytes, 1200u);
  // 1200 B lands in [1000, 1e4); 70 B in [10, 100).
  EXPECT_EQ(result.size_histogram.bucket(3), 1u);
  EXPECT_EQ(result.size_histogram.bucket(1), 1u);
  // The long flow's observed span is 600 s -> [300, 1800) bucket; the
  // single-frame flow has zero span -> [0, 1).
  EXPECT_EQ(result.duration_histogram.bucket(5), 1u);
  EXPECT_EQ(result.duration_histogram.bucket(0), 1u);
  EXPECT_DOUBLE_EQ(result.median_flow_bytes, 635.0);
  // Two flows of 70 and 1200 bytes: the tail quantiles interpolate along
  // the same rank rule as util::percentile.
  EXPECT_DOUBLE_EQ(result.p95_flow_bytes,
                   util::percentile(std::vector<double>{70.0, 1200.0}, 95.0));
  EXPECT_DOUBLE_EQ(result.p99_flow_bytes,
                   util::percentile(std::vector<double>{70.0, 1200.0}, 99.0));
}

TEST(FlowDistribution, EmptyInput) {
  const auto result = analyze_flow_distribution({});
  EXPECT_EQ(result.flows, 0u);
  EXPECT_DOUBLE_EQ(result.median_flow_bytes, 0.0);
  EXPECT_DOUBLE_EQ(result.p95_flow_bytes, 0.0);
  EXPECT_DOUBLE_EQ(result.p99_flow_bytes, 0.0);
}

TEST(TopStacks, OrdersByFrequencyAndReportsFractions) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1, 5201), tcp_frame(3, 4, 5, 5201),
       tcp_frame(5, 6, 7, 5201),  // Three identical stacks.
       tcp_frame(1, 2, 1, 443)}));
  const auto files = digest_all(captures);
  const auto stacks = analyze_top_stacks(files, 10);
  ASSERT_GE(stacks.size(), 2u);
  EXPECT_EQ(stacks[0].frames, 3u);
  EXPECT_DOUBLE_EQ(stacks[0].fraction, 0.75);
  EXPECT_NE(stacks[0].stack.find("eth/vlan/mpls/ipv4/tcp"),
            std::string::npos);
  EXPECT_GE(stacks[0].frames, stacks[1].frames);
}

TEST(TopStacks, KLimitsOutput) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1, 5201), tcp_frame(1, 2, 1, 443),
       tcp_frame(1, 2, 1, 22)}));
  const auto files = digest_all(captures);
  EXPECT_LE(analyze_top_stacks(files, 2).size(), 2u);
}

TEST(Tagging, ClassifiesVlanMplsCombinations) {
  net::FrameBuilder untagged;
  untagged.ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .udp(1, 2)
      .payload(10);
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1, 2), untagged.build()}));
  const auto files = digest_all(captures);
  const TaggingResult result = analyze_tagging(files);
  EXPECT_EQ(result.frames, 2u);
  EXPECT_EQ(result.vlan_tagged, 1u);
  EXPECT_EQ(result.mpls_tagged, 1u);
  EXPECT_EQ(result.both_tagged, 1u);
  EXPECT_EQ(result.untagged, 1u);
}

}  // namespace
}  // namespace patchwork::analysis
