#include "analysis/acap.hpp"

#include <gtest/gtest.h>

#include "net/frame_builder.hpp"

namespace patchwork::analysis {
namespace {

using net::FrameBuilder;
using net::Ipv4Address;
using net::MacAddress;

net::ParsedFrame parsed_tcp(Ipv4Address src, Ipv4Address dst,
                            std::uint16_t sport, std::uint16_t dport,
                            std::uint16_t vlan = 0) {
  FrameBuilder b;
  b.ethernet(MacAddress::from_id(1), MacAddress::from_id(2));
  if (vlan) b.vlan(vlan);
  b.ipv4(src, dst).tcp(sport, dport).payload(10);
  return net::parse_frame(b.build());
}

TEST(FlowKey, BidirectionalFramesShareOneKey) {
  const auto a = Ipv4Address::from_octets(10, 0, 0, 1);
  const auto b = Ipv4Address::from_octets(10, 0, 0, 2);
  const FlowKey forward = flow_key_of(parsed_tcp(a, b, 50000, 443));
  const FlowKey reverse = flow_key_of(parsed_tcp(b, a, 443, 50000));
  EXPECT_EQ(forward, reverse);
  EXPECT_EQ(FlowKeyHash{}(forward), FlowKeyHash{}(reverse));
}

TEST(FlowKey, VirtualizationTagsSeparateIdenticalAddresses) {
  // Section 6.2.4: "even if the same 10/8 addresses are used in different
  // slices, they are treated as different flows."
  const auto a = Ipv4Address::from_octets(10, 0, 0, 1);
  const auto b = Ipv4Address::from_octets(10, 0, 0, 2);
  const FlowKey slice1 = flow_key_of(parsed_tcp(a, b, 1000, 2000, 100));
  const FlowKey slice2 = flow_key_of(parsed_tcp(a, b, 1000, 2000, 200));
  EXPECT_NE(slice1, slice2);
}

TEST(FlowKey, PortsDistinguishFlows) {
  const auto a = Ipv4Address::from_octets(10, 0, 0, 1);
  const auto b = Ipv4Address::from_octets(10, 0, 0, 2);
  EXPECT_NE(flow_key_of(parsed_tcp(a, b, 1000, 443)),
            flow_key_of(parsed_tcp(a, b, 1001, 443)));
}

TEST(FlowKey, MplsLabelsIncluded) {
  FrameBuilder b1, b2;
  const auto a = Ipv4Address::from_octets(10, 0, 0, 1);
  const auto b = Ipv4Address::from_octets(10, 0, 0, 2);
  b1.ethernet(MacAddress::from_id(1), MacAddress::from_id(2))
      .mpls(16001)
      .ipv4(a, b)
      .udp(1, 2);
  b2.ethernet(MacAddress::from_id(1), MacAddress::from_id(2))
      .mpls(16002)
      .ipv4(a, b)
      .udp(1, 2);
  EXPECT_NE(flow_key_of(net::parse_frame(b1.build())),
            flow_key_of(net::parse_frame(b2.build())));
}

TEST(FlowKey, OrderingIsStrictWeak) {
  const auto a = Ipv4Address::from_octets(10, 0, 0, 1);
  const auto b = Ipv4Address::from_octets(10, 0, 0, 2);
  const FlowKey k1 = flow_key_of(parsed_tcp(a, b, 1, 2));
  const FlowKey k2 = flow_key_of(parsed_tcp(a, b, 3, 4));
  EXPECT_NE(k1 < k2, k2 < k1);
  EXPECT_FALSE(k1 < k1);
}

TEST(FlowKey, ToStringMentionsTags) {
  const auto a = Ipv4Address::from_octets(10, 0, 0, 1);
  const auto b = Ipv4Address::from_octets(10, 0, 0, 2);
  const FlowKey k = flow_key_of(parsed_tcp(a, b, 1, 2, 77));
  EXPECT_NE(k.to_string().find("77"), std::string::npos);
}

TEST(AbstractFrame, CapturesStackAndMetadata) {
  FrameBuilder b;
  b.ethernet(MacAddress::from_id(1), MacAddress::from_id(2))
      .vlan(5)
      .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
            Ipv4Address::from_octets(10, 0, 0, 2))
      .tcp(1, 2, net::tcp_flags::kRst)
      .pad_to(999);
  const net::Frame frame = b.build(123456);
  const AcapRecord rec = abstract_frame(net::parse_frame(frame));
  EXPECT_EQ(rec.wire_length, 999u);
  EXPECT_EQ(rec.timestamp, 123456u);
  EXPECT_EQ(rec.tcp_flags, net::tcp_flags::kRst);
  EXPECT_TRUE(rec.has(net::Protocol::kVlan));
  EXPECT_EQ(rec.header_depth(), 4u);
}

TEST(AbstractFrame, NonTcpHasZeroFlags) {
  FrameBuilder b;
  b.ethernet(MacAddress::from_id(1), MacAddress::from_id(2))
      .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
            Ipv4Address::from_octets(10, 0, 0, 2))
      .udp(1, 2)
      .payload(5);
  const AcapRecord rec = abstract_frame(net::parse_frame(b.build()));
  EXPECT_EQ(rec.tcp_flags, 0);
  EXPECT_EQ(rec.flow.l4_proto, net::kIpProtoUdp);
}

}  // namespace
}  // namespace patchwork::analysis
