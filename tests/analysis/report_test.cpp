#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/digest.hpp"
#include "testing/fixtures.hpp"

namespace patchwork::analysis {
namespace {

using patchwork::testing::make_capture;
using patchwork::testing::tcp_frame;

std::vector<AcapFile> two_site_files() {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1, 443, 1900), tcp_frame(1, 2, 3, 443, 80)}));
  captures.push_back(make_capture("S2", 0, {tcp_frame(3, 4, 5, 22, 300)}));
  return digest_all(captures);
}

std::size_t line_count(const std::string& s) {
  return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
}

TEST(Report, FrameSizeCsvHasOneRowPerBucket) {
  const auto files = two_site_files();
  std::ostringstream os;
  write_frame_size_csv(os, analyze_frame_sizes(files));
  // Header + one row per bucket.
  EXPECT_EQ(line_count(os.str()),
            1 + paper_frame_size_edges().size() - 1);
  EXPECT_NE(os.str().find("bucket_lo"), std::string::npos);
}

TEST(Report, SiteFrameSizeCsvCoversAllSites) {
  const auto files = two_site_files();
  std::ostringstream os;
  write_site_frame_size_csv(os, files);
  EXPECT_NE(os.str().find("S1"), std::string::npos);
  EXPECT_NE(os.str().find("S2"), std::string::npos);
}

TEST(Report, HeaderOccurrenceSkipsAbsentProtocols) {
  const auto files = two_site_files();
  std::ostringstream os;
  write_header_occurrence_csv(os, analyze_header_occurrence(files));
  EXPECT_NE(os.str().find("ipv4"), std::string::npos);
  EXPECT_EQ(os.str().find("icmp"), std::string::npos);
}

TEST(Report, SiteVarietyCsv) {
  const auto files = two_site_files();
  std::ostringstream os;
  write_site_variety_csv(os, analyze_site_header_variety(files));
  EXPECT_EQ(line_count(os.str()), 3u);  // Header + two sites.
}

TEST(Report, FlowsPerSampleCsv) {
  const auto files = two_site_files();
  std::ostringstream os;
  write_flows_per_sample_csv(os, analyze_flows_per_sample(files));
  EXPECT_EQ(line_count(os.str()), 3u);
}

TEST(Report, FlowAggregateCsvSortedByBytes) {
  const auto files = two_site_files();
  std::ostringstream os;
  write_flow_aggregate_csv(os, aggregate_flows(files));
  const std::string out = os.str();
  EXPECT_EQ(line_count(out), 4u);  // Header + 3 flows.
  // Largest flow (1900 B) appears before the smallest (80 B): compare
  // positions of their byte counts.
  EXPECT_LT(out.find("1900"), out.find(",80,"));
}

TEST(Report, TcpControlAndTaggingCsv) {
  const auto files = two_site_files();
  std::ostringstream os1, os2;
  write_tcp_control_csv(os1, analyze_tcp_control(files));
  write_tagging_csv(os2, analyze_tagging(files));
  EXPECT_NE(os1.str().find("tcp_frames,3"), std::string::npos);
  EXPECT_NE(os2.str().find("vlan_tagged,3"), std::string::npos);
}

}  // namespace
}  // namespace patchwork::analysis
