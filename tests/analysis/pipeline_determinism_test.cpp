// The parallel pipeline's contract: output is byte-identical to the serial
// path for every thread count. These tests pin PATCHWORK_THREADS-equivalent
// modes (0 = serial fallback, then 1, 2, 8 workers) and compare every CSV
// byte and every stat counter.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "analysis/pipeline.hpp"
#include "testing/fixtures.hpp"
#include "util/parallel.hpp"

namespace patchwork::analysis {
namespace {

using patchwork::testing::make_capture;
using patchwork::testing::tcp_frame;

/// Restores env/hardware thread resolution when a test scope exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(std::nullopt); }
};

std::vector<RawCapture> multi_site_profile() {
  std::vector<RawCapture> captures;
  // Several sites, uneven sample sizes, repeated flows across samples so
  // flow stitching and per-site analyses all have real work to do.
  for (int site = 0; site < 6; ++site) {
    for (int sample = 0; sample < 3; ++sample) {
      std::vector<net::Frame> frames;
      for (int f = 0; f < 40 + site * 7 + sample * 3; ++f) {
        const auto a = static_cast<std::uint8_t>(1 + (f + site) % 5);
        const auto b = static_cast<std::uint8_t>(6 + f % 4);
        frames.push_back(tcp_frame(
            a, b, static_cast<std::uint16_t>(1000 + f % 13),
            static_cast<std::uint16_t>(f % 2 ? 443 : 5201),
            64 + static_cast<std::size_t>((f * 97) % 1800),
            static_cast<util::Nanos>(f) * util::kMillisecond,
            static_cast<std::uint16_t>(100 + site)));
      }
      captures.push_back(make_capture("S" + std::to_string(site),
                                      static_cast<std::uint32_t>(sample),
                                      frames,
                                      sample * 10 * util::kMinute));
    }
  }
  return captures;
}

void expect_reports_identical(const ProfileReport& a, const ProfileReport& b,
                              const std::string& label) {
  EXPECT_EQ(a.digest_stats.frames, b.digest_stats.frames) << label;
  EXPECT_EQ(a.digest_stats.bad_records, b.digest_stats.bad_records) << label;
  EXPECT_EQ(a.digest_stats.truncated_frames, b.digest_stats.truncated_frames)
      << label;
  EXPECT_EQ(a.digest_stats.malformed_frames, b.digest_stats.malformed_frames)
      << label;
  EXPECT_EQ(a.distinct_flows, b.distinct_flows) << label;
  EXPECT_EQ(a.largest_flow_bytes, b.largest_flow_bytes) << label;
  ASSERT_EQ(a.csv_files.size(), b.csv_files.size()) << label;
  for (const auto& [name, bytes] : a.csv_files) {
    ASSERT_TRUE(b.csv_files.count(name)) << label << ": " << name;
    EXPECT_EQ(bytes, b.csv_files.at(name))
        << label << ": " << name << " differs";
  }
}

TEST(PipelineDeterminism, IdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const std::vector<RawCapture> profile = multi_site_profile();

  util::set_thread_count(0);  // Serial reference.
  const ProfileReport reference = run_pipeline(profile);
  EXPECT_GT(reference.digest_stats.frames, 0u);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const ProfileReport parallel = run_pipeline(profile);
    expect_reports_identical(reference, parallel,
                             "threads=" + std::to_string(threads));
  }
}

TEST(PipelineDeterminism, DigestAllMatchesSerialOrderAndStats) {
  ThreadCountGuard guard;
  const std::vector<RawCapture> profile = multi_site_profile();

  util::set_thread_count(0);
  DigestStats serial_stats;
  const std::vector<AcapFile> serial = digest_all(profile, &serial_stats);

  util::set_thread_count(8);
  DigestStats parallel_stats;
  const std::vector<AcapFile> parallel = digest_all(profile, &parallel_stats);

  EXPECT_EQ(serial_stats.frames, parallel_stats.frames);
  EXPECT_EQ(serial_stats.bad_records, parallel_stats.bad_records);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].site, parallel[i].site) << i;
    EXPECT_EQ(serial[i].port, parallel[i].port) << i;
    ASSERT_EQ(serial[i].records.size(), parallel[i].records.size()) << i;
    for (std::size_t r = 0; r < serial[i].records.size(); ++r) {
      EXPECT_EQ(serial[i].records[r].stack, parallel[i].records[r].stack);
      EXPECT_EQ(serial[i].records[r].wire_length,
                parallel[i].records[r].wire_length);
      EXPECT_EQ(serial[i].records[r].flow, parallel[i].records[r].flow);
    }
  }
}

TEST(PipelineDeterminism, RepeatedParallelRunsAgree) {
  ThreadCountGuard guard;
  const std::vector<RawCapture> profile = multi_site_profile();
  util::set_thread_count(4);
  const ProfileReport first = run_pipeline(profile);
  const ProfileReport second = run_pipeline(profile);
  expect_reports_identical(first, second, "repeat");
}

}  // namespace
}  // namespace patchwork::analysis
