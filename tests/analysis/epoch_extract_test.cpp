#include "analysis/epoch_extract.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/pipeline.hpp"
#include "testing/fixtures.hpp"

namespace patchwork::analysis {
namespace {

using patchwork::testing::make_capture;
using patchwork::testing::tcp_frame;

std::vector<RawCapture> sample_profile() {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1000, 443, 1900), tcp_frame(2, 1, 443, 1000, 70)}));
  captures.push_back(
      make_capture("S2", 3, {tcp_frame(3, 4, 2000, 5201, 2000)},
                   10 * util::kMinute));
  return captures;
}

EpochMeta sample_meta() {
  EpochMeta meta;
  meta.label = "week38";
  meta.start = 5 * util::kMinute;
  meta.duration = 7 * util::kDay;
  meta.offered_bps = 2.5e12;
  meta.manifest_json = "{\"seed\": 42}";
  meta.top_flow_capacity = 16;
  return meta;
}

TEST(PipelineSiteLoads, ReportCarriesPerSiteAccounting) {
  const std::vector<RawCapture> captures = sample_profile();
  const ProfileReport report = run_pipeline(captures);

  ASSERT_EQ(report.site_loads.size(), 2u);
  EXPECT_EQ(report.site_loads[0].site, "S1");
  EXPECT_EQ(report.site_loads[1].site, "S2");
  EXPECT_EQ(report.site_loads[0].samples, 1u);
  EXPECT_EQ(report.site_loads[0].frames, 2u);
  EXPECT_EQ(report.site_loads[1].frames, 1u);
  EXPECT_EQ(report.site_loads[0].pcap_bytes, captures[0].pcap.size());
  EXPECT_GT(report.site_loads[0].wire_bytes, 1900u);

  ASSERT_TRUE(report.site_frame_sizes.count("S1"));
  ASSERT_TRUE(report.site_frame_sizes.count("S2"));
  EXPECT_EQ(report.site_frame_sizes.at("S1").frames, 2u);
  EXPECT_EQ(report.site_frame_sizes.at("S2").frames, 1u);
  // Per-site histograms partition the global one.
  EXPECT_EQ(report.site_frame_sizes.at("S1").frames +
                report.site_frame_sizes.at("S2").frames,
            report.frame_sizes.frames);
}

TEST(EpochExtract, RecordMirrorsTheReport) {
  const ProfileReport report = run_pipeline(sample_profile());
  const archive::EpochRecord record =
      extract_epoch_record(report, sample_meta());

  EXPECT_EQ(record.level, 0u);
  EXPECT_EQ(record.epoch_count, 1u);
  EXPECT_EQ(record.label, "week38");
  EXPECT_EQ(record.start_nanos, 5 * util::kMinute);
  EXPECT_DOUBLE_EQ(record.offered_bps_sum, 2.5e12);
  EXPECT_EQ(record.manifest_json, "{\"seed\": 42}");

  EXPECT_EQ(record.frames, report.digest_stats.frames);
  EXPECT_EQ(record.samples, 2u);  // One per capture.
  EXPECT_EQ(record.frame_sizes.total(), report.frame_sizes.frames);
  EXPECT_EQ(record.occurrence_frames, report.header_occurrence.frames);
  ASSERT_EQ(record.protocol_occurrences.size(), net::kProtocolCount);
  EXPECT_EQ(record.protocol_occurrences[static_cast<std::size_t>(
                net::Protocol::kTcp)],
            report.header_occurrence
                .occurrences[static_cast<std::size_t>(net::Protocol::kTcp)]);
  EXPECT_EQ(record.tcp_frames, report.tcp_control.tcp_frames);
  EXPECT_EQ(record.flow_snippets, report.distinct_flows);
  EXPECT_EQ(record.largest_flow_bytes, report.largest_flow_bytes);

  ASSERT_EQ(record.site_loads.size(), 2u);
  EXPECT_EQ(record.site_loads[0].site, "S1");
  EXPECT_EQ(record.site_loads[1].site, "S2");
  EXPECT_EQ(record.site_loads[0].frame_sizes.total(), 2u);

  // Under capacity the sketch is exact: one entry per distinct flow, zero
  // error, counts equal to the aggregated wire bytes.
  EXPECT_EQ(record.top_flows.size(), report.distinct_flows);
  std::uint64_t sketch_bytes = 0, flow_bytes = 0;
  for (const auto& entry : record.top_flows.entries()) {
    EXPECT_EQ(entry.error, 0u);
    sketch_bytes += entry.count;
  }
  for (const auto& [key, aggregate] : report.flow_aggregates) {
    flow_bytes += aggregate.wire_bytes;
  }
  EXPECT_EQ(sketch_bytes, flow_bytes);
}

TEST(EpochExtract, ExtractionIsDeterministic) {
  const ProfileReport report = run_pipeline(sample_profile());
  const auto a = archive::encode_record(
      extract_epoch_record(report, sample_meta()));
  const auto b = archive::encode_record(
      extract_epoch_record(report, sample_meta()));
  EXPECT_EQ(a, b);
}

TEST(EpochExtract, EmptyReportProducesEmptyRecord) {
  const ProfileReport report = run_pipeline({});
  const archive::EpochRecord record =
      extract_epoch_record(report, sample_meta());
  EXPECT_EQ(record.frames, 0u);
  EXPECT_EQ(record.site_loads.size(), 0u);
  EXPECT_EQ(record.top_flows.size(), 0u);
  // Still round-trips through the codec.
  archive::EpochRecord decoded;
  ASSERT_TRUE(archive::decode_record(archive::encode_record(record),
                                     &decoded));
  EXPECT_TRUE(decoded == record);
}

}  // namespace
}  // namespace patchwork::analysis
