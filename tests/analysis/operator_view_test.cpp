#include "analysis/operator_view.hpp"

#include <gtest/gtest.h>

#include "analysis/digest.hpp"
#include "testing/fixtures.hpp"

namespace patchwork::analysis {
namespace {

using patchwork::testing::make_capture;
using patchwork::testing::tcp_frame;

TEST(OperatorView, AggregatesByFiveTuple) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1000, 443, 500, 0), tcp_frame(1, 2, 1000, 443, 700, 5),
       tcp_frame(3, 4, 2000, 22, 300, 9)}));
  const auto files = digest_all(captures);
  const auto view = operator_flow_view(files);
  ASSERT_EQ(view.size(), 2u);
  std::uint64_t total_frames = 0, total_bytes = 0;
  for (const auto& [key, rec] : view) {
    total_frames += rec.frames;
    total_bytes += rec.wire_bytes;
  }
  EXPECT_EQ(total_frames, 3u);
  EXPECT_EQ(total_bytes, 1500u);
}

TEST(OperatorView, TagsAreInvisible) {
  // The same 5-tuple in two different slices (VLAN 100 vs 200): Patchwork
  // keeps them apart; the operator view cannot.
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0,
      {tcp_frame(1, 2, 1000, 443, 256, 0, /*vlan=*/100),
       tcp_frame(1, 2, 1000, 443, 256, 1, /*vlan=*/200)}));
  const auto files = digest_all(captures);
  const auto view = operator_flow_view(files);
  EXPECT_EQ(view.size(), 1u);  // Collapsed.
  const AsymmetryReport report = measure_asymmetry(files);
  EXPECT_EQ(report.patchwork_flows, 2u);
  EXPECT_EQ(report.operator_flows, 1u);
  EXPECT_EQ(report.collapsed_keys, 1u);
  EXPECT_EQ(report.hidden_flows, 1u);
  EXPECT_DOUBLE_EQ(report.undercount_fraction(), 0.5);
}

TEST(OperatorView, NoCollisionNoLoss) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1000, 443), tcp_frame(3, 4, 1001, 443)}));
  const auto files = digest_all(captures);
  const AsymmetryReport report = measure_asymmetry(files);
  EXPECT_EQ(report.patchwork_flows, report.operator_flows);
  EXPECT_EQ(report.hidden_flows, 0u);
  EXPECT_DOUBLE_EQ(report.undercount_fraction(), 0.0);
}

TEST(OperatorView, TimestampsSpanSamples) {
  std::vector<RawCapture> captures;
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1000, 443, 256, util::kSecond)}, 0));
  captures.push_back(make_capture(
      "S1", 0, {tcp_frame(1, 2, 1000, 443, 256, 2 * util::kSecond)},
      10 * util::kMinute));
  const auto files = digest_all(captures);
  const auto view = operator_flow_view(files);
  ASSERT_EQ(view.size(), 1u);
  const OperatorFlowRecord& rec = view.begin()->second;
  EXPECT_EQ(rec.first_seen, util::kSecond);
  EXPECT_EQ(rec.last_seen, 10 * util::kMinute + 2 * util::kSecond);
}

TEST(OperatorView, EmptyProfile) {
  const AsymmetryReport report = measure_asymmetry({});
  EXPECT_EQ(report.patchwork_flows, 0u);
  EXPECT_EQ(report.operator_flows, 0u);
  EXPECT_DOUBLE_EQ(report.undercount_fraction(), 0.0);
}

}  // namespace
}  // namespace patchwork::analysis
