#include "capture/perf_model.hpp"

#include <gtest/gtest.h>

#include "pcap/pcap.hpp"

namespace patchwork::capture {
namespace {

host::HostSpec table_host() {
  // The Appendix B host: 16 cores, 128 GB RAM, ~100 GB free cache.
  host::HostSpec spec;
  spec.page_cache.dirty_background_ratio = 0.60;
  spec.page_cache.dirty_ratio = 0.80;
  return spec;
}

TEST(TcpdumpModel, LosslessBelowCeiling) {
  host::HostSpec spec;
  TcpdumpRunParams p;
  p.offered_bps = 5e9;
  p.frame_size = 1500;
  const TcpdumpRunStats stats = simulate_tcpdump(spec, p);
  EXPECT_EQ(stats.dropped_frames, 0u);
  EXPECT_GT(stats.captured_frames, 0u);
}

TEST(TcpdumpModel, LossyAboveCeiling) {
  host::HostSpec spec;
  TcpdumpRunParams p;
  p.offered_bps = 20e9;
  p.frame_size = 1500;
  const TcpdumpRunStats stats = simulate_tcpdump(spec, p);
  EXPECT_GT(stats.loss_fraction(), 0.3);
}

TEST(TcpdumpModel, CeilingNear8point5Gbps) {
  // Section 8.1.2: "tcpdump was able to capture packets without packet
  // loss until about 8.5 Gbps of throughput for 1500B frames."
  host::HostSpec spec;
  const double ceiling = tcpdump_lossless_ceiling_bps(spec, 1500, 64);
  EXPECT_GT(ceiling, 7.5e9);
  EXPECT_LT(ceiling, 9.5e9);
}

TEST(TcpdumpModel, BufferAbsorbsShortBursts) {
  // Over a very short run, the 32 MB buffer absorbs an over-rate stream.
  host::HostSpec spec;
  TcpdumpRunParams p;
  p.offered_bps = 12e9;
  p.frame_size = 1500;
  p.duration = 10 * util::kMillisecond;
  EXPECT_EQ(simulate_tcpdump(spec, p).dropped_frames, 0u);
  // Sustained, the same stream loses frames.
  p.duration = 10 * util::kSecond;
  EXPECT_GT(simulate_tcpdump(spec, p).dropped_frames, 0u);
}

struct TableRow {
  std::size_t frame_size;
  double rate_gbps;
  std::uint32_t cores;
  std::uint32_t truncation;
};

class TruncationTables : public ::testing::TestWithParam<TableRow> {};

TEST_P(TruncationTables, LossStaysUnderOnePercent) {
  const TableRow row = GetParam();
  util::Rng rng(42);
  DpdkRunParams p;
  p.offered_bps = row.rate_gbps * 1e9;
  p.frame_size = row.frame_size;
  p.truncation = row.truncation;
  p.cores = row.cores;
  p.duration = 2 * util::kSecond;
  host::HostSpec spec = table_host();
  const DpdkRunStats stats = simulate_dpdk_writer(spec, p, rng);
  EXPECT_LT(stats.loss_fraction(), 0.01)
      << row.frame_size << "B @" << row.rate_gbps << "G x" << row.cores
      << " trunc " << row.truncation;
  EXPECT_GT(stats.captured_frames, 0u);
}

// Every row of Table 1 (200 B truncation) and Table 2 (64 B truncation).
INSTANTIATE_TEST_SUITE_P(
    PaperTables, TruncationTables,
    ::testing::Values(TableRow{1514, 100, 5, 200}, TableRow{1024, 100, 10, 200},
                      TableRow{512, 60, 15, 200}, TableRow{128, 15, 15, 200},
                      TableRow{1514, 100, 3, 64}, TableRow{1024, 100, 5, 64},
                      TableRow{512, 100, 15, 64}, TableRow{128, 28, 15, 64}));

TEST(DpdkModel, FewerCoresThanTableLoses) {
  // The tables list the cores *needed*; below that, loss blows past 1%.
  util::Rng rng(42);
  DpdkRunParams p;
  p.offered_bps = 100e9;
  p.frame_size = 1514;
  p.truncation = 200;
  p.cores = 3;  // Table 1 says 5.
  p.duration = util::kSecond;
  host::HostSpec spec = table_host();
  EXPECT_GT(simulate_dpdk_writer(spec, p, rng).loss_fraction(), 0.05);
}

TEST(DpdkModel, SixtyFourByteTruncationNeedsFewerCores) {
  // Section 8.1.4's headline: "performance improves for 64 bytes
  // truncation, requiring fewer cores to achieve the same throughput".
  util::Rng rng1(42), rng2(42);
  DpdkRunParams p;
  p.offered_bps = 100e9;
  p.frame_size = 1514;
  p.cores = 3;
  p.duration = util::kSecond;
  host::HostSpec spec = table_host();
  p.truncation = 64;
  const double loss64 = simulate_dpdk_writer(spec, p, rng1).loss_fraction();
  p.truncation = 200;
  const double loss200 = simulate_dpdk_writer(spec, p, rng2).loss_fraction();
  EXPECT_LT(loss64, 0.01);
  EXPECT_GT(loss200, loss64);
}

TEST(DpdkModel, WritevBatchesOf128Frames) {
  util::Rng rng(1);
  DpdkRunParams p;
  p.offered_bps = 10e9;
  p.frame_size = 1514;
  p.truncation = 200;
  p.cores = 5;
  p.duration = util::kSecond;
  const DpdkRunStats stats = simulate_dpdk_writer(table_host(), p, rng);
  // One writev per 128 captured frames (plus or minus the tail).
  EXPECT_NEAR(static_cast<double>(stats.writev_calls),
              static_cast<double>(stats.captured_frames) / 128.0,
              static_cast<double>(stats.writev_calls) * 0.1 + 2);
  EXPECT_EQ(stats.bytes_stored,
            stats.writev_calls * 128 * (200 + pcap::kRecordHeaderSize));
}

TEST(DpdkModel, TightThresholdsHitTheLatencyWall) {
  // Fig. 14: with 10:20 thresholds the summed high-bucket latency explodes
  // once usage passes the midpoint; with 20:50 it stays low at the same
  // usage.
  host::HostSpec tight;
  tight.page_cache.dirty_background_ratio = 0.10;
  tight.page_cache.dirty_ratio = 0.20;
  tight.page_cache.free_cache_bytes = 4ull << 30;  // Small for test speed.
  // Appendix B's host: flushing is far slower than the truncated ingest,
  // so dirty pages track cumulative usage.
  tight.page_cache.storage_write_bytes_per_sec = 150e6;
  host::HostSpec loose = tight;
  loose.page_cache.dirty_background_ratio = 0.20;
  loose.page_cache.dirty_ratio = 0.50;

  DpdkRunParams p;
  p.offered_bps = 100e9;
  p.frame_size = 1514;
  p.truncation = 200;
  p.cores = 8;
  p.track_usage_curve = true;
  // Write ~25% of the free cache.
  p.duration = util::from_seconds(
      0.25 * static_cast<double>(tight.page_cache.free_cache_bytes) /
      (100e9 / 8.0 / 1514.0 * 216.0));

  util::Rng rng1(7), rng2(7);
  const DpdkRunStats tight_stats = simulate_dpdk_writer(tight, p, rng1);
  const DpdkRunStats loose_stats = simulate_dpdk_writer(loose, p, rng2);

  auto at_21pct = [](const DpdkRunStats& s) {
    double val = 0.0;
    for (const UsagePoint& pt : s.usage_curve) {
      if (pt.usage_fraction <= 0.21) val = pt.summed_high_latency_ms;
    }
    return val;
  };
  const double tight_ms = at_21pct(tight_stats);
  const double loose_ms = at_21pct(loose_stats);
  // "two orders of magnitude lower" in the paper; require >= 10x here.
  EXPECT_GT(tight_ms, 10.0 * std::max(loose_ms, 0.001));
}

TEST(DpdkModel, ZeroOfferedRateIsEmptyRun) {
  util::Rng rng(1);
  DpdkRunParams p;
  p.offered_bps = 0.0;
  const DpdkRunStats stats = simulate_dpdk_writer(table_host(), p, rng);
  EXPECT_EQ(stats.offered_frames, 0u);
  EXPECT_EQ(stats.writev_calls, 0u);
}

}  // namespace
}  // namespace patchwork::capture
