#include "capture/fpga_pipeline.hpp"

#include <gtest/gtest.h>

#include "net/frame_builder.hpp"

namespace patchwork::capture {
namespace {

using net::FrameBuilder;
using net::Ipv4Address;
using net::MacAddress;

net::Frame tcp_frame(std::uint16_t dport, std::size_t size = 1514) {
  return FrameBuilder()
      .ethernet(MacAddress::from_id(1), MacAddress::from_id(2))
      .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
            Ipv4Address::from_octets(10, 0, 0, 2))
      .tcp(50000, dport)
      .payload(8)
      .pad_to(size)
      .build();
}

TEST(FpgaPipeline, TruncatesToSnaplen) {
  CaptureConfig config;
  config.snaplen = 200;
  FpgaPipeline pipeline(config);
  const auto out = pipeline.process(tcp_frame(443));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->captured_length(), 200u);
  EXPECT_EQ(out->wire_length(), 1514u);
}

TEST(FpgaPipeline, FilterDropsNonMatching) {
  CaptureConfig config;
  config.filter = std::get<Filter>(Filter::compile("port 443"));
  FpgaPipeline pipeline(config);
  EXPECT_TRUE(pipeline.process(tcp_frame(443)).has_value());
  EXPECT_FALSE(pipeline.process(tcp_frame(22)).has_value());
  EXPECT_EQ(pipeline.stats().seen, 2u);
  EXPECT_EQ(pipeline.stats().filtered_out, 1u);
  EXPECT_EQ(pipeline.stats().emitted, 1u);
}

TEST(FpgaPipeline, OneInNSampling) {
  CaptureConfig config;
  config.sample_1_in_n = 4;
  FpgaPipeline pipeline(config);
  int kept = 0;
  for (int i = 0; i < 100; ++i) {
    if (pipeline.process(tcp_frame(443)).has_value()) ++kept;
  }
  EXPECT_EQ(kept, 25);
  EXPECT_EQ(pipeline.stats().sampled_out, 75u);
}

TEST(FpgaPipeline, SamplingCountsOnlyFilteredInFrames) {
  CaptureConfig config;
  config.filter = std::get<Filter>(Filter::compile("port 443"));
  config.sample_1_in_n = 2;
  FpgaPipeline pipeline(config);
  int kept = 0;
  for (int i = 0; i < 40; ++i) {
    // Alternate matching and non-matching frames.
    if (pipeline.process(tcp_frame(i % 2 ? 443 : 22)).has_value()) ++kept;
  }
  // 20 matched the filter; every 2nd kept.
  EXPECT_EQ(kept, 10);
}

TEST(FpgaPipeline, AnonymizationAppliedOnCard) {
  CaptureConfig config;
  config.anonymize = true;
  config.snaplen = 200;
  FpgaPipeline pipeline(config);
  const net::Frame in = tcp_frame(443);
  const auto out = pipeline.process(in);
  ASSERT_TRUE(out.has_value());
  const auto before = net::parse_frame(in);
  const auto after = net::parse_frame(*out);
  ASSERT_TRUE(before.ipv4 && after.ipv4);
  EXPECT_NE(after.ipv4->src, before.ipv4->src);
}

TEST(FpgaPipeline, StatsResettable) {
  CaptureConfig config;
  FpgaPipeline pipeline(config);
  pipeline.process(tcp_frame(443));
  pipeline.reset_stats();
  EXPECT_EQ(pipeline.stats().seen, 0u);
}

}  // namespace
}  // namespace patchwork::capture
