#include "capture/anonymize.hpp"

#include <gtest/gtest.h>

#include "net/frame_builder.hpp"
#include "net/checksum.hpp"

namespace patchwork::capture {
namespace {

using net::FrameBuilder;
using net::Ipv4Address;
using net::MacAddress;

net::Frame sample_frame() {
  return FrameBuilder()
      .ethernet(MacAddress::from_id(11), MacAddress::from_id(22))
      .vlan(42)
      .ipv4(Ipv4Address::from_octets(10, 1, 2, 3),
            Ipv4Address::from_octets(10, 4, 5, 6))
      .tcp(50000, 443)
      .tls()
      .payload(64)
      .build();
}

TEST(Anonymizer, MapIpv4PreservesSlashEight) {
  Anonymizer anon(123);
  const std::uint32_t addr = Ipv4Address::from_octets(10, 1, 2, 3).value;
  const std::uint32_t mapped = anon.map_ipv4(addr);
  EXPECT_EQ(mapped >> 24, 10u);
  EXPECT_NE(mapped, addr);
}

TEST(Anonymizer, MappingIsDeterministicPerKey) {
  Anonymizer a(123), b(123), c(456);
  const std::uint32_t addr = Ipv4Address::from_octets(10, 1, 2, 3).value;
  EXPECT_EQ(a.map_ipv4(addr), b.map_ipv4(addr));
  EXPECT_NE(a.map_ipv4(addr), c.map_ipv4(addr));
}

TEST(Anonymizer, DistinctAddressesStayDistinct) {
  Anonymizer anon(99);
  const std::uint32_t a = Ipv4Address::from_octets(10, 1, 2, 3).value;
  const std::uint32_t b = Ipv4Address::from_octets(10, 1, 2, 4).value;
  EXPECT_NE(anon.map_ipv4(a), anon.map_ipv4(b));
}

TEST(Anonymizer, ScrubRewritesAddressesInPlace) {
  Anonymizer anon(7);
  const net::Frame original = sample_frame();
  const net::Frame scrubbed = anon.scrub_frame(original);
  const net::ParsedFrame before = net::parse_frame(original);
  const net::ParsedFrame after = net::parse_frame(scrubbed);
  ASSERT_TRUE(before.ipv4 && after.ipv4);
  EXPECT_NE(after.ipv4->src, before.ipv4->src);
  EXPECT_NE(after.ipv4->dst, before.ipv4->dst);
  // /8 preserved so 10/8 membership survives for analyses.
  EXPECT_TRUE(after.ipv4->src.in_ten_slash_eight());
  EXPECT_TRUE(after.ipv4->dst.in_ten_slash_eight());
}

TEST(Anonymizer, ScrubPreservesStructureAndPorts) {
  Anonymizer anon(7);
  const net::Frame scrubbed = anon.scrub_frame(sample_frame());
  const net::ParsedFrame parsed = net::parse_frame(scrubbed);
  EXPECT_EQ(parsed.stack_string(), "eth/vlan/ipv4/tcp/tls/data");
  ASSERT_TRUE(parsed.tcp.has_value());
  EXPECT_EQ(parsed.tcp->src_port, 50000);
  EXPECT_EQ(parsed.tcp->dst_port, 443);
  ASSERT_EQ(parsed.vlan_ids.size(), 1u);
  EXPECT_EQ(parsed.vlan_ids[0], 42);
}

TEST(Anonymizer, Ipv4ChecksumStillVerifies) {
  Anonymizer anon(7);
  const net::Frame scrubbed = anon.scrub_frame(sample_frame());
  // The IPv4 header (offset 18: eth+vlan) must checksum to zero.
  const auto bytes = scrubbed.bytes();
  EXPECT_EQ(net::internet_checksum(bytes.subspan(18, 20)), 0);
}

TEST(Anonymizer, MacsBecomeLocallyAdministered) {
  Anonymizer anon(7);
  const net::Frame scrubbed = anon.scrub_frame(sample_frame());
  EXPECT_EQ(scrubbed.bytes()[0], 0x02);  // dst MAC first byte.
  EXPECT_EQ(scrubbed.bytes()[6], 0x02);  // src MAC first byte.
}

TEST(Anonymizer, SameFlowMapsConsistentlyAcrossFrames) {
  // Flows must remain correlatable after anonymization.
  Anonymizer anon(7);
  const net::Frame f1 = anon.scrub_frame(sample_frame());
  const net::Frame f2 = anon.scrub_frame(sample_frame());
  const auto p1 = net::parse_frame(f1);
  const auto p2 = net::parse_frame(f2);
  ASSERT_TRUE(p1.ipv4 && p2.ipv4);
  EXPECT_EQ(p1.ipv4->src, p2.ipv4->src);
  EXPECT_EQ(p1.ipv4->dst, p2.ipv4->dst);
}

TEST(Anonymizer, Ipv6InterfaceIdScrambledPrefixKept) {
  Anonymizer anon(7);
  const net::Frame f =
      FrameBuilder()
          .ethernet(MacAddress::from_id(1), MacAddress::from_id(2))
          .ipv6(net::Ipv6Address::from_words({0xfd00, 1, 2, 3, 4, 5, 6, 7}),
                net::Ipv6Address::from_words({0xfd00, 9, 9, 9, 8, 8, 8, 8}))
          .udp(1000, 2000)
          .payload(32)
          .build();
  const net::Frame scrubbed = anon.scrub_frame(f);
  const auto parsed = net::parse_frame(scrubbed);
  ASSERT_TRUE(parsed.ipv6.has_value());
  // First 8 bytes (prefix) kept; last 8 scrambled.
  const auto orig = net::parse_frame(f);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(parsed.ipv6->src.bytes[static_cast<std::size_t>(i)],
              orig.ipv6->src.bytes[static_cast<std::size_t>(i)]);
  }
  bool changed = false;
  for (int i = 8; i < 16; ++i) {
    changed |= parsed.ipv6->src.bytes[static_cast<std::size_t>(i)] !=
               orig.ipv6->src.bytes[static_cast<std::size_t>(i)];
  }
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace patchwork::capture
