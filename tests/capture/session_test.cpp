#include "capture/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "capture/anonymize.hpp"
#include "net/frame_builder.hpp"
#include "net/parser.hpp"

namespace patchwork::capture {
namespace {

using net::FrameBuilder;
using net::Ipv4Address;
using net::MacAddress;

std::vector<net::Frame> make_frames(std::size_t n, std::uint16_t dport = 5201,
                                    std::size_t size = 1514) {
  std::vector<net::Frame> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(FrameBuilder()
                      .ethernet(MacAddress::from_id(1), MacAddress::from_id(2))
                      .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                            Ipv4Address::from_octets(10, 0, 0, 2))
                      .tcp(50000, dport)
                      .payload(4)
                      .pad_to(size)
                      .build(static_cast<util::Nanos>(i) * 1000));
  }
  return out;
}

struct SessionTest : ::testing::Test {
  SessionTest() : rng(5) {}
  util::Rng rng;
  host::HostSpec host;
};

TEST_F(SessionTest, LowRateLosslessCapture) {
  CaptureConfig config;
  config.method = CaptureMethod::kTcpdump;
  config.snaplen = 200;
  CaptureSession session(config, host, rng);
  const auto frames = make_frames(500);
  const CaptureResult result = session.run(frames, /*offered_pps=*/1000.0);
  EXPECT_EQ(result.stats.captured, 500u);
  EXPECT_EQ(result.stats.dropped_capacity, 0u);
  EXPECT_GT(result.pcap.size(), 500 * 200);
}

TEST_F(SessionTest, PcapOutputIsReadableAndTruncated) {
  CaptureConfig config;
  config.snaplen = 200;
  CaptureSession session(config, host, rng);
  const auto frames = make_frames(50);
  CaptureResult result = session.run(frames, 1000.0);
  auto reader = pcap::PcapReader::open(std::move(result.pcap));
  ASSERT_TRUE(reader.has_value());
  std::size_t count = 0;
  while (auto f = reader->next()) {
    EXPECT_EQ(f->captured_length(), 200u);
    EXPECT_EQ(f->wire_length(), 1514u);
    ++count;
  }
  EXPECT_EQ(count, 50u);
}

TEST_F(SessionTest, TcpdumpOverloadLosesFrames) {
  // A 100G stream into the kernel path: most frames must be lost
  // (Section 8.1.2's ceiling is ~8.5 Gbps).
  CaptureConfig config;
  config.method = CaptureMethod::kTcpdump;
  CaptureSession session(config, host, rng);
  const auto frames = make_frames(2000);
  const double offered_pps = 100e9 / (8.0 * 1514.0);
  const CaptureResult result = session.run(frames, offered_pps);
  EXPECT_GT(result.stats.loss_fraction(), 0.8);
}

TEST_F(SessionTest, FpgaDpdkSustainsWhatTcpdumpCannot) {
  const double offered_pps = 100e9 / (8.0 * 1514.0);
  const auto frames = make_frames(2000);

  CaptureConfig fpga;
  fpga.method = CaptureMethod::kFpgaDpdk;
  fpga.cores = 5;
  fpga.snaplen = 200;
  CaptureSession fast(fpga, host, rng);
  const auto fast_result = fast.run(frames, offered_pps);
  EXPECT_LT(fast_result.stats.loss_fraction(), 0.05);

  CaptureConfig slow;
  slow.method = CaptureMethod::kTcpdump;
  slow.snaplen = 200;
  CaptureSession kernel(slow, host, rng);
  const auto slow_result = kernel.run(frames, offered_pps);
  EXPECT_GT(slow_result.stats.loss_fraction(),
            fast_result.stats.loss_fraction() + 0.5);
}

TEST_F(SessionTest, FilterRunsBeforeHostOnFpga) {
  // With FPGA offload, a filter that drops 100% of traffic means the host
  // path sees nothing — no capacity losses even at line rate.
  CaptureConfig config;
  config.method = CaptureMethod::kFpgaDpdk;
  config.cores = 1;
  config.filter = std::get<Filter>(Filter::compile("port 9999"));
  CaptureSession session(config, host, rng);
  const auto frames = make_frames(1000);
  const CaptureResult result = session.run(frames, 100e9 / (8.0 * 1514.0));
  EXPECT_EQ(result.stats.captured, 0u);
  EXPECT_EQ(result.stats.dropped_capacity, 0u);
  EXPECT_EQ(result.stats.filtered_out, 1000u);
}

TEST_F(SessionTest, SamplingThinsOutput) {
  CaptureConfig config;
  config.sample_1_in_n = 10;
  CaptureSession session(config, host, rng);
  const auto frames = make_frames(1000);
  const CaptureResult result = session.run(frames, 100.0);
  EXPECT_EQ(result.stats.captured, 100u);
  EXPECT_EQ(result.stats.sampled_out, 900u);
}

TEST_F(SessionTest, AnonymizedCaptureHidesRealAddresses) {
  CaptureConfig config;
  config.anonymize = true;
  config.snaplen = 200;
  CaptureSession session(config, host, rng);
  const auto frames = make_frames(10);
  CaptureResult result = session.run(frames, 100.0);
  auto reader = pcap::PcapReader::open(std::move(result.pcap));
  ASSERT_TRUE(reader.has_value());
  while (auto f = reader->next()) {
    const auto parsed = net::parse_frame(*f);
    ASSERT_TRUE(parsed.ipv4.has_value());
    EXPECT_NE(parsed.ipv4->src, Ipv4Address::from_octets(10, 0, 0, 1));
  }
}

TEST_F(SessionTest, InPlaceScrubMatchesScrubFrameSemantics) {
  // The zero-copy path writes the truncated record first and scrubs it in
  // the pcap stream; that must be byte-for-byte what the owning path would
  // produce by truncating and then scrubbing a Frame.
  CaptureConfig config;
  config.anonymize = true;
  config.snaplen = 200;
  CaptureSession session(config, host, rng);
  const auto frames = make_frames(25);
  CaptureResult result = session.run(frames, /*offered_pps=*/100.0);
  ASSERT_EQ(result.stats.captured, frames.size());

  const Anonymizer anonymizer(config.anonymize_key);
  auto reader = pcap::PcapReader::open(std::move(result.pcap));
  ASSERT_TRUE(reader.has_value());
  for (const net::Frame& original : frames) {
    auto record = reader->next();
    ASSERT_TRUE(record.has_value());
    const net::Frame expected =
        anonymizer.scrub_frame(original.truncate(config.snaplen));
    EXPECT_EQ(record->timestamp(), expected.timestamp());
    EXPECT_EQ(record->wire_length(), expected.wire_length());
    ASSERT_EQ(record->captured_length(), expected.captured_length());
    EXPECT_TRUE(std::equal(record->bytes().begin(), record->bytes().end(),
                           expected.bytes().begin()));
  }
  EXPECT_FALSE(reader->next().has_value());
}

TEST_F(SessionTest, ViewAndFramePathsEmitIdenticalStreams) {
  // Same frames through the FrameView overload and the owning overload,
  // with same-seed RNGs: both paths must agree on every stat and byte.
  CaptureConfig config;
  config.sample_1_in_n = 3;
  config.anonymize = true;
  const auto frames = make_frames(200);
  net::FrameStore store;
  std::vector<net::FrameView> views;
  for (const net::Frame& f : frames) {
    const std::size_t start = store.arena().size();
    store.arena().insert(store.arena().end(), f.bytes().begin(),
                         f.bytes().end());
    store.commit(start, f.timestamp());
  }
  views.reserve(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) views.push_back(store.view(i));

  util::Rng rng_frames(99);
  util::Rng rng_views(99);
  CaptureSession by_frame(config, host, rng_frames);
  CaptureSession by_view(config, host, rng_views);
  const CaptureResult a = by_frame.run(frames, 5000.0);
  const CaptureResult b =
      by_view.run(std::span<const net::FrameView>(views), 5000.0);
  EXPECT_EQ(a.stats.captured, b.stats.captured);
  EXPECT_EQ(a.stats.sampled_out, b.stats.sampled_out);
  EXPECT_EQ(a.stats.dropped_capacity, b.stats.dropped_capacity);
  EXPECT_EQ(a.pcap, b.pcap);
}

TEST_F(SessionTest, EmptyInputProducesValidEmptyPcap) {
  CaptureConfig config;
  CaptureSession session(config, host, rng);
  CaptureResult result =
      session.run(std::span<const net::Frame>(), 0.0);
  EXPECT_EQ(result.stats.offered, 0u);
  auto reader = pcap::PcapReader::open(std::move(result.pcap));
  ASSERT_TRUE(reader.has_value());
  EXPECT_FALSE(reader->next().has_value());
}

}  // namespace
}  // namespace patchwork::capture
