#include "capture/filter.hpp"

#include <gtest/gtest.h>

#include "net/frame_builder.hpp"

namespace patchwork::capture {
namespace {

using net::FrameBuilder;
using net::Ipv4Address;
using net::MacAddress;

const MacAddress kSrc = MacAddress::from_id(1);
const MacAddress kDst = MacAddress::from_id(2);
const Ipv4Address kA = Ipv4Address::from_octets(10, 0, 0, 1);
const Ipv4Address kB = Ipv4Address::from_octets(10, 0, 0, 2);

Filter compile_ok(std::string_view text) {
  auto result = Filter::compile(text);
  EXPECT_TRUE(std::holds_alternative<Filter>(result)) << text;
  return std::get<Filter>(result);
}

net::ParsedFrame tcp_frame(std::uint16_t sport, std::uint16_t dport,
                           std::size_t size = 0) {
  FrameBuilder b;
  b.ethernet(kSrc, kDst).vlan(100).ipv4(kA, kB).tcp(sport, dport).payload(4);
  if (size) b.pad_to(size);
  return net::parse_frame(b.build());
}

TEST(Filter, EmptyMatchesEverything) {
  Filter f;
  EXPECT_TRUE(f.matches(tcp_frame(1, 2)));
  EXPECT_TRUE(compile_ok("").matches(tcp_frame(1, 2)));
}

TEST(Filter, ProtocolPredicates) {
  EXPECT_TRUE(compile_ok("ip").matches(tcp_frame(1, 2)));
  EXPECT_TRUE(compile_ok("tcp").matches(tcp_frame(1, 2)));
  EXPECT_FALSE(compile_ok("udp").matches(tcp_frame(1, 2)));
  EXPECT_FALSE(compile_ok("ip6").matches(tcp_frame(1, 2)));
  EXPECT_TRUE(compile_ok("vlan").matches(tcp_frame(1, 2)));
}

TEST(Filter, PortPredicates) {
  EXPECT_TRUE(compile_ok("port 443").matches(tcp_frame(50000, 443)));
  EXPECT_TRUE(compile_ok("port 50000").matches(tcp_frame(50000, 443)));
  EXPECT_FALSE(compile_ok("port 22").matches(tcp_frame(50000, 443)));
  EXPECT_TRUE(compile_ok("src port 50000").matches(tcp_frame(50000, 443)));
  EXPECT_FALSE(compile_ok("src port 443").matches(tcp_frame(50000, 443)));
  EXPECT_TRUE(compile_ok("dst port 443").matches(tcp_frame(50000, 443)));
}

TEST(Filter, HostPredicates) {
  EXPECT_TRUE(compile_ok("host 10.0.0.1").matches(tcp_frame(1, 2)));
  EXPECT_TRUE(compile_ok("src host 10.0.0.1").matches(tcp_frame(1, 2)));
  EXPECT_FALSE(compile_ok("dst host 10.0.0.1").matches(tcp_frame(1, 2)));
  EXPECT_FALSE(compile_ok("host 10.9.9.9").matches(tcp_frame(1, 2)));
}

TEST(Filter, VlanAndMplsWithIds) {
  EXPECT_TRUE(compile_ok("vlan 100").matches(tcp_frame(1, 2)));
  EXPECT_FALSE(compile_ok("vlan 101").matches(tcp_frame(1, 2)));
  FrameBuilder b;
  b.ethernet(kSrc, kDst).mpls(16001).ipv4(kA, kB).udp(1, 2);
  const auto parsed = net::parse_frame(b.build());
  EXPECT_TRUE(compile_ok("mpls").matches(parsed));
  EXPECT_TRUE(compile_ok("mpls 16001").matches(parsed));
  EXPECT_FALSE(compile_ok("mpls 7").matches(parsed));
}

TEST(Filter, SizePredicates) {
  EXPECT_TRUE(compile_ok("greater 1000").matches(tcp_frame(1, 2, 1514)));
  EXPECT_FALSE(compile_ok("greater 2000").matches(tcp_frame(1, 2, 1514)));
  EXPECT_TRUE(compile_ok("less 1514").matches(tcp_frame(1, 2, 1514)));
  EXPECT_TRUE(compile_ok("jumbo").matches(tcp_frame(1, 2, 2000)));
  EXPECT_FALSE(compile_ok("jumbo").matches(tcp_frame(1, 2, 1514)));
}

TEST(Filter, BooleanOperators) {
  const auto f = tcp_frame(50000, 443, 1514);
  EXPECT_TRUE(compile_ok("ip and tcp").matches(f));
  EXPECT_FALSE(compile_ok("ip and udp").matches(f));
  EXPECT_TRUE(compile_ok("udp or tcp").matches(f));
  EXPECT_TRUE(compile_ok("not udp").matches(f));
  EXPECT_FALSE(compile_ok("not tcp").matches(f));
}

TEST(Filter, PrecedenceAndParentheses) {
  const auto f = tcp_frame(50000, 443);
  // "and" binds tighter than "or": this reads (udp and port 9) or tcp.
  EXPECT_TRUE(compile_ok("udp and port 9 or tcp").matches(f));
  EXPECT_FALSE(compile_ok("udp and (port 9 or tcp)").matches(f));
  EXPECT_TRUE(compile_ok("not (udp or icmp)").matches(f));
}

TEST(Filter, PaperStyleExcludeManagementTraffic) {
  // Requirement 1 of Section 1: filtering to exclude unwanted traffic,
  // e.g. the profiler's own SSH management sessions.
  const Filter f = compile_ok("ip and not port 22");
  EXPECT_TRUE(f.matches(tcp_frame(50000, 443)));
  EXPECT_FALSE(f.matches(tcp_frame(50000, 22)));
}

TEST(Filter, CompileErrorsAreReported) {
  EXPECT_TRUE(std::holds_alternative<Filter::CompileError>(
      Filter::compile("port")));
  EXPECT_TRUE(std::holds_alternative<Filter::CompileError>(
      Filter::compile("port abc")));
  EXPECT_TRUE(std::holds_alternative<Filter::CompileError>(
      Filter::compile("host 999.0.0.1")));
  EXPECT_TRUE(std::holds_alternative<Filter::CompileError>(
      Filter::compile("(tcp")));
  EXPECT_TRUE(std::holds_alternative<Filter::CompileError>(
      Filter::compile("tcp tcp")));
  EXPECT_TRUE(std::holds_alternative<Filter::CompileError>(
      Filter::compile("frobnicate")));
  EXPECT_TRUE(std::holds_alternative<Filter::CompileError>(
      Filter::compile("src vlan 3")));
}

TEST(Filter, SourceTextPreserved) {
  EXPECT_EQ(compile_ok("tcp and port 80").source(), "tcp and port 80");
}

TEST(Filter, CopiesShareCompiledProgram) {
  const Filter f = compile_ok("tcp");
  const Filter g = f;  // NOLINT: exercising copy semantics.
  EXPECT_TRUE(g.matches(tcp_frame(1, 2)));
}

}  // namespace
}  // namespace patchwork::capture
