#include "archive/sketch.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace patchwork::archive {
namespace {

TEST(TopFlowSketch, ExactUnderCapacity) {
  TopFlowSketch sketch(8);
  sketch.insert("a", 100);
  sketch.insert("b", 50);
  sketch.insert("c", 150);
  sketch.insert("a", 10);  // Repeat insert accumulates.

  const auto top = sketch.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "c");
  EXPECT_EQ(top[0].count, 150u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, "a");
  EXPECT_EQ(top[1].count, 110u);
  EXPECT_EQ(sketch.floor(), 0u);
}

TEST(TopFlowSketch, EvictionRaisesFloorAndKeepsBound) {
  TopFlowSketch sketch(2);
  sketch.insert("a", 100);
  sketch.insert("b", 50);
  sketch.insert("c", 10);  // Evicts b (count 50): c enters at 60, error 50.

  const auto& entries = sketch.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "a");
  EXPECT_EQ(entries[1].key, "c");
  EXPECT_EQ(entries[1].count, 60u);
  EXPECT_EQ(entries[1].error, 50u);
  EXPECT_EQ(sketch.floor(), 50u);
  // Space-saving bound: true(c)=10 <= 60 <= 10 + 50.
  EXPECT_LE(10u, entries[1].count);
  EXPECT_LE(entries[1].count - entries[1].error, 10u);
}

TEST(TopFlowSketch, CanonicalOrderBreaksTiesDeterministically) {
  TopFlowSketch sketch(8);
  sketch.insert("zeta", 10);
  sketch.insert("alpha", 10);
  sketch.insert("mid", 10);
  const auto& entries = sketch.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, "alpha");
  EXPECT_EQ(entries[1].key, "mid");
  EXPECT_EQ(entries[2].key, "zeta");
}

TEST(TopFlowSketch, MergeSumsSharedKeysAndChargesFloorsForAbsentOnes) {
  TopFlowSketch a(4), b(4);
  a.insert("x", 100);
  a.insert("only_a", 30);
  b.insert("x", 60);
  b.insert("only_b", 40);

  a.merge(b);
  std::map<std::string, TopFlowSketch::Entry> by_key;
  for (const auto& e : a.entries()) by_key[e.key] = e;
  ASSERT_EQ(by_key.size(), 3u);
  // Both floors are 0, so sums are exact.
  EXPECT_EQ(by_key["x"].count, 160u);
  EXPECT_EQ(by_key["x"].error, 0u);
  EXPECT_EQ(by_key["only_a"].count, 30u);
  EXPECT_EQ(by_key["only_b"].count, 40u);
  EXPECT_EQ(a.floor(), 0u);
}

TEST(TopFlowSketch, MergeIsExactWhileUnderCapacity) {
  // With no truncation, any merge grouping is per-key summation — compare
  // left fold against a direct multiset sum.
  util::Rng rng(7);
  std::vector<TopFlowSketch> parts;
  std::map<std::string, std::uint64_t> truth;
  for (int p = 0; p < 4; ++p) {
    TopFlowSketch s(64);
    for (int i = 0; i < 10; ++i) {
      const std::string key = "flow" + std::to_string(rng.uniform_u64(0, 15));
      const std::uint64_t bytes = rng.uniform_u64(1, 1000);
      s.insert(key, bytes);
      truth[key] += bytes;
    }
    parts.push_back(std::move(s));
  }
  TopFlowSketch fold = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) fold.merge(parts[i]);
  ASSERT_EQ(fold.size(), truth.size());
  for (const auto& e : fold.entries()) {
    EXPECT_EQ(e.count, truth.at(e.key)) << e.key;
    EXPECT_EQ(e.error, 0u) << e.key;
  }
}

TEST(TopFlowSketch, MergeUnderTruncationKeepsSpaceSavingBound) {
  util::Rng rng(99);
  std::map<std::string, std::uint64_t> truth;
  std::vector<TopFlowSketch> parts;
  for (int p = 0; p < 6; ++p) {
    TopFlowSketch s(8);  // Far smaller than the key universe.
    for (int i = 0; i < 40; ++i) {
      const std::string key = "k" + std::to_string(rng.uniform_u64(0, 63));
      const std::uint64_t bytes = rng.uniform_u64(1, 500);
      s.insert(key, bytes);
      truth[key] += bytes;
    }
    parts.push_back(std::move(s));
  }
  TopFlowSketch fold = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) fold.merge(parts[i]);

  EXPECT_LE(fold.size(), 8u);
  for (const auto& e : fold.entries()) {
    const std::uint64_t true_count = truth.at(e.key);
    EXPECT_GE(e.count, true_count) << e.key << ": count must overestimate";
    EXPECT_LE(e.count - e.error, true_count)
        << e.key << ": count-error must underestimate";
    EXPECT_GE(e.count, fold.floor());
  }
}

TEST(TopFlowSketch, FromPartsRoundTripsEquality) {
  TopFlowSketch sketch(4);
  sketch.insert("a", 10);
  sketch.insert("b", 20);
  const TopFlowSketch rebuilt = TopFlowSketch::from_parts(
      sketch.capacity(), sketch.floor(), sketch.entries());
  EXPECT_TRUE(sketch == rebuilt);
}

}  // namespace
}  // namespace patchwork::archive
