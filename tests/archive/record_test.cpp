#include "archive/record.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace patchwork::archive {
namespace {

EpochRecord sample_record(std::uint64_t epoch, const std::string& label) {
  EpochRecord r;
  r.first_epoch = r.last_epoch = epoch;
  r.label = label;
  r.start_nanos = epoch * 1000;
  r.duration_nanos = 1000;
  r.offered_bps_sum = 1.5e12;
  r.samples = 4;
  r.frames = 1000 + epoch;
  r.bad_records = 1;
  r.truncated_frames = 2;
  r.malformed_frames = 3;
  r.switch_drops_suspected = 5;
  r.pcap_bytes = 123456;
  r.frame_sizes.edges = {64, 128, 1519};
  r.frame_sizes.counts = {10, 20};
  r.frame_sizes.underflow = 1;
  r.frame_sizes.overflow = 7;
  r.protocol_occurrences = {100, 0, 30};
  r.tcp_frames = 900;
  r.tcp_syn = 10;
  r.tcp_fin = 9;
  r.tcp_rst = 2;
  r.tcp_pure_ack = 300;
  r.tag_frames = 1000;
  r.vlan_tagged = 950;
  r.mpls_tagged = 400;
  r.both_tagged = 390;
  r.untagged = 40;
  r.flow_snippets = 77;
  r.largest_flow_bytes = 999999;
  SiteEpochLoad site;
  site.site = "SITE" + std::to_string(epoch % 2);
  site.samples = 2;
  site.frames = 500;
  site.wire_bytes = 600000;
  site.pcap_bytes = 60000;
  site.switch_drops_suspected = 5;
  site.frame_sizes = r.frame_sizes;
  r.site_loads.push_back(site);
  TopFlowSketch sketch(16);
  sketch.insert("flowA", 1000 + epoch);
  sketch.insert("flowB", 500);
  r.top_flows = std::move(sketch);
  r.manifest_json = "{\"seed\": " + std::to_string(epoch) + "}";
  return r;
}

TEST(HistCounts, FractionAtOrAboveIncludesOverflow) {
  HistCounts h;
  h.edges = {64, 128, 1519, 9217};
  h.counts = {10, 20, 30};
  h.overflow = 5;
  h.underflow = 35;
  // total = 100; at/above 1519: bucket [1519,9217) = 30, plus overflow 5.
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(1519.0), 0.35);
  EXPECT_DOUBLE_EQ(HistCounts{}.fraction_at_or_above(1519.0), 0.0);
}

TEST(HistCounts, MergeIsBucketwiseSum) {
  HistCounts a, b;
  a.edges = b.edges = {0, 10, 20};
  a.counts = {1, 2};
  b.counts = {10, 20};
  a.underflow = 1;
  b.overflow = 3;
  a.merge(b);
  EXPECT_EQ(a.counts, (std::vector<std::uint64_t>{11, 22}));
  EXPECT_EQ(a.underflow, 1u);
  EXPECT_EQ(a.overflow, 3u);
  // Merging into an empty histogram adopts the other's shape.
  HistCounts empty;
  empty.merge(b);
  EXPECT_EQ(empty, b);
}

TEST(HistCounts, MergeReBinsMismatchedLayoutsWithoutDroppingCounts) {
  // Regression: mismatched bucket shapes used to silently drop the other
  // side's counts. Heterogeneous configs must re-bin, not discard.
  HistCounts a, b;
  a.edges = {0, 10, 20, 30};
  a.counts = {1, 2, 3};
  a.underflow = 4;
  a.overflow = 5;  // total 15.
  b.edges = {0, 20, 40};  // Shares edges 0 and 20 with a.
  b.counts = {10, 20};
  b.underflow = 1;
  b.overflow = 2;  // total 33.
  const std::uint64_t want_total = a.total() + b.total();

  a.merge(b);
  EXPECT_EQ(a.total(), want_total);
  // Coarsest common layout: the intersection {0, 20} -> one bucket [0,20).
  EXPECT_EQ(a.edges, (std::vector<double>{0, 20}));
  ASSERT_EQ(a.counts.size(), 1u);
  EXPECT_EQ(a.counts[0], 13u);  // a's [0,10)+[10,20) plus b's [0,20).
  // Mass past the common span falls to overflow, not the floor.
  EXPECT_EQ(a.overflow, 30u);   // 5 + a's [20,30)=3 + 2 + b's [20,40)=20.
  EXPECT_EQ(a.underflow, 5u);
}

TEST(HistCounts, MergeWithDisjointLayoutsStillPreservesTotal) {
  HistCounts a, b;
  a.edges = {0, 10};
  a.counts = {5};
  b.edges = {100, 200};
  b.counts = {7};
  const std::uint64_t want_total = a.total() + b.total();
  a.merge(b);
  EXPECT_EQ(a.total(), want_total);  // No common bucket: nothing dropped.
}

TEST(HistCounts, FractionAtOrAboveOffEdgeUsesOverlapFraction) {
  // Regression: a threshold inside a bucket used to exclude that bucket
  // entirely, undercounting off-edge queries.
  HistCounts h;
  h.edges = {0, 100};
  h.counts = {100};
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(75.0), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(100.0), 0.0);
  // Partially covered plus fully covered buckets compose.
  HistCounts two;
  two.edges = {0, 10, 20};
  two.counts = {10, 30};
  EXPECT_DOUBLE_EQ(two.fraction_at_or_above(5.0), (5.0 + 30.0) / 40.0);
}

TEST(EpochRecord, CrossOriginMergeQualifiesLabelAndClearsOrigin) {
  // Two deployments can both have an epoch 0 labeled "week38"; the origin
  // tag keeps their identities and their rollup label distinguishable.
  EpochRecord a = sample_record(0, "week38");
  a.origin = "starlight";
  EpochRecord b = sample_record(0, "week38");
  b.origin = "dallas";
  EXPECT_FALSE(record_ident(a) == record_ident(b));

  a.merge_from(b);
  EXPECT_EQ(a.label, "starlight:week38..dallas:week38");
  EXPECT_TRUE(a.origin.empty());  // Mixed provenance.

  // Same-origin merges keep the tag and the plain span label.
  EpochRecord c = sample_record(1, "week39");
  c.origin = "dallas";
  EpochRecord d = sample_record(2, "week40");
  d.origin = "dallas";
  c.merge_from(d);
  EXPECT_EQ(c.label, "week39..week40");
  EXPECT_EQ(c.origin, "dallas");
}

TEST(EpochRecord, Version1PayloadsDecodeWithoutOriginTag) {
  // A v1 payload is the v2 layout minus the origin string (which sits
  // right after the label). Splice it out and decode as version 1.
  EpochRecord original = sample_record(2, "w2");
  original.origin.clear();
  const std::vector<std::uint8_t> v2 = encode_record(original);
  const std::size_t origin_off = 24 + 4 + original.label.size();
  std::vector<std::uint8_t> v1 = v2;
  v1.erase(v1.begin() + static_cast<std::ptrdiff_t>(origin_off),
           v1.begin() + static_cast<std::ptrdiff_t>(origin_off + 4));
  EpochRecord decoded;
  ASSERT_TRUE(decode_record(v1, 1, &decoded));
  EXPECT_TRUE(decoded == original);
}

TEST(EpochRecord, SupersedeMarkerRoundTrip) {
  SupersedeMarker marker;
  SupersedeMarker::Commit commit;
  commit.rollup = {"", 1, 0, 3};
  commit.replaced = {{"", 0, 0, 0}, {"dallas", 0, 1, 1}};
  marker.commits.push_back(commit);
  const std::vector<std::uint8_t> payload = encode_supersede_marker(marker);
  SupersedeMarker decoded;
  ASSERT_TRUE(decode_supersede_marker(payload, &decoded));
  EXPECT_TRUE(decoded == marker);
  // Truncation fails, never misparses.
  for (std::size_t cut = 0; cut < payload.size(); cut += 5) {
    EXPECT_FALSE(decode_supersede_marker(
        std::span<const std::uint8_t>(payload.data(), cut), &decoded));
  }
}

TEST(EpochRecord, EncodeDecodeRoundTrip) {
  const EpochRecord original = sample_record(3, "week3");
  const std::vector<std::uint8_t> payload = encode_record(original);
  EpochRecord decoded;
  ASSERT_TRUE(decode_record(payload, &decoded));
  EXPECT_TRUE(decoded == original);
}

TEST(EpochRecord, EncodingIsDeterministic) {
  EXPECT_EQ(encode_record(sample_record(5, "w5")),
            encode_record(sample_record(5, "w5")));
}

TEST(EpochRecord, DecodeRejectsTruncationAndTrailingGarbage) {
  const std::vector<std::uint8_t> payload =
      encode_record(sample_record(1, "w1"));
  EpochRecord out;
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, payload.size() / 2,
                          payload.size() - 1}) {
    EXPECT_FALSE(decode_record(
        std::span<const std::uint8_t>(payload.data(), cut), &out))
        << "cut=" << cut;
  }
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(decode_record(padded, &out));
}

TEST(EpochRecord, DecodeRejectsAbsurdLengthPrefixes) {
  // A length prefix claiming more bytes than the payload holds must fail
  // fast instead of allocating.
  std::vector<std::uint8_t> payload = encode_record(sample_record(1, "w1"));
  // The label length prefix sits after level(4)+first(8)+last(8)+count(4).
  const std::size_t label_len_off = 24;
  payload[label_len_off] = 0xFF;
  payload[label_len_off + 1] = 0xFF;
  EpochRecord out;
  EXPECT_FALSE(decode_record(payload, &out));
}

TEST(EpochRecord, MergeFromSumsSpansAndJoinsSites) {
  EpochRecord a = sample_record(0, "week38");
  EpochRecord b = sample_record(1, "week39");
  const std::uint64_t want_frames = a.frames + b.frames;

  a.merge_from(b);
  EXPECT_EQ(a.level, 1u);
  EXPECT_TRUE(a.is_rollup());
  EXPECT_EQ(a.first_epoch, 0u);
  EXPECT_EQ(a.last_epoch, 1u);
  EXPECT_EQ(a.epoch_count, 2u);
  EXPECT_EQ(a.label, "week38..week39");
  EXPECT_EQ(a.start_nanos, 0u);
  EXPECT_EQ(a.duration_nanos, 2000u);  // 0..(1000+1000).
  EXPECT_EQ(a.frames, want_frames);
  EXPECT_EQ(a.largest_flow_bytes, 999999u);  // Max, not sum.
  EXPECT_EQ(a.flow_snippets, 154u);          // 77 + 77 snippets.
  EXPECT_TRUE(a.manifest_json.empty());      // Dropped on merge.
  // sample_record(0) loads SITE0, sample_record(1) loads SITE1: disjoint
  // sites stay separate and sorted.
  ASSERT_EQ(a.site_loads.size(), 2u);
  EXPECT_EQ(a.site_loads[0].site, "SITE0");
  EXPECT_EQ(a.site_loads[1].site, "SITE1");

  // Same-site loads fold by sum.
  EpochRecord c = sample_record(2, "week40");  // SITE0 again.
  a.merge_from(c);
  ASSERT_EQ(a.site_loads.size(), 2u);
  EXPECT_EQ(a.site_loads[0].frames, 1000u);
  EXPECT_EQ(a.label, "week38..week40");
  EXPECT_EQ(a.epoch_count, 3u);
}

TEST(EpochRecord, RollupOfRollupsKeepsOutermostSpanLabel) {
  EpochRecord ab = sample_record(0, "w0");
  ab.merge_from(sample_record(1, "w1"));
  EpochRecord cd = sample_record(2, "w2");
  cd.merge_from(sample_record(3, "w3"));
  ab.merge_from(cd);
  EXPECT_EQ(ab.label, "w0..w3");
  EXPECT_EQ(ab.first_epoch, 0u);
  EXPECT_EQ(ab.last_epoch, 3u);
  EXPECT_EQ(ab.epoch_count, 4u);
}

TEST(EpochRecord, MergePreservesSumQueriesUnderAnyGrouping) {
  // The archive's compaction guarantee for sum-type fields: fold four
  // records two different ways and compare everything except the sketch.
  std::vector<EpochRecord> records;
  for (std::uint64_t e = 0; e < 4; ++e) {
    records.push_back(sample_record(e, "w" + std::to_string(e)));
  }
  EpochRecord left = records[0];
  for (std::size_t i = 1; i < 4; ++i) left.merge_from(records[i]);
  EpochRecord pairs_a = records[0];
  pairs_a.merge_from(records[1]);
  EpochRecord pairs_b = records[2];
  pairs_b.merge_from(records[3]);
  pairs_a.merge_from(pairs_b);

  EXPECT_EQ(left.frames, pairs_a.frames);
  EXPECT_EQ(left.frame_sizes, pairs_a.frame_sizes);
  EXPECT_EQ(left.protocol_occurrences, pairs_a.protocol_occurrences);
  EXPECT_EQ(left.tcp_frames, pairs_a.tcp_frames);
  EXPECT_EQ(left.flow_snippets, pairs_a.flow_snippets);
  EXPECT_EQ(left.site_loads, pairs_a.site_loads);
  EXPECT_EQ(left.epoch_count, pairs_a.epoch_count);
  EXPECT_DOUBLE_EQ(left.offered_bps_sum, pairs_a.offered_bps_sum);
}

}  // namespace
}  // namespace patchwork::archive
