// Hostile wire input: payloads that frame and checksum correctly but
// violate the decoded structures' invariants must be rejected and counted,
// never built into poisoned in-memory objects. Runs under ASan in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "archive/format.hpp"
#include "archive/reader.hpp"
#include "archive/record.hpp"
#include "archive/sketch.hpp"
#include "obs/metrics.hpp"
#include "util/byte_io.hpp"
#include "util/file_io.hpp"

namespace patchwork::archive {
namespace {

class ArchiveCorruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/patchwork_corrupt_test.pwar";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // A record whose sketch layout is easy to index from the payload's end:
  // empty manifest, three 2-byte keys.
  EpochRecord sketch_record() {
    EpochRecord r;
    r.label = "e0";
    r.frames = 10;
    TopFlowSketch sketch(8);
    sketch.insert("aa", 300);
    sketch.insert("bb", 200);
    sketch.insert("cc", 100);
    r.top_flows = std::move(sketch);
    return r;
  }

  // Payload tail layout (record codec): capacity u32 | floor u64 |
  // entry_count u32 | entries (4+2+8+8 each) | manifest string (u32 len 0).
  static std::size_t capacity_offset(const std::vector<std::uint8_t>& p) {
    return p.size() - 4 - 3 * (4 + 2 + 8 + 8) - 4 - 8 - 4;
  }
  static std::size_t last_error_offset(const std::vector<std::uint8_t>& p) {
    return p.size() - 4 - 8;
  }

  static void put_u32_at(std::vector<std::uint8_t>& p, std::size_t off,
                         std::uint32_t value) {
    p[off] = static_cast<std::uint8_t>(value >> 24);
    p[off + 1] = static_cast<std::uint8_t>(value >> 16);
    p[off + 2] = static_cast<std::uint8_t>(value >> 8);
    p[off + 3] = static_cast<std::uint8_t>(value);
  }

  // Frame `payload` as a CRC-valid kEpoch block in a fresh archive file.
  void write_archive_with_payload(const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> file = encode_file_header();
    append_block(file, BlockType::kEpoch, payload);
    ASSERT_TRUE(util::write_file_atomic(
        path_, std::span<const std::uint8_t>(file)));
  }

  std::uint64_t counter_value(const std::string& name) {
    for (const auto& v : obs::registry().snapshot_values()) {
      if (v.name == name) return v.count;
    }
    return 0;
  }

  std::string path_;
};

TEST_F(ArchiveCorruptTest, ValidPartsRejectsInvariantViolations) {
  using Entry = TopFlowSketch::Entry;
  EXPECT_TRUE(TopFlowSketch::valid_parts(4, {}));
  EXPECT_TRUE(TopFlowSketch::valid_parts(0, {}));  // Empty is always fine.
  EXPECT_TRUE(TopFlowSketch::valid_parts(2, {{"a", 10, 3}}));
  EXPECT_FALSE(TopFlowSketch::valid_parts(0, {{"a", 10, 3}}));
  EXPECT_FALSE(
      TopFlowSketch::valid_parts(1, {{"a", 10, 3}, {"b", 5, 0}}));
  EXPECT_FALSE(TopFlowSketch::valid_parts(2, {{"a", 3, 10}}));  // err > cnt.
}

TEST_F(ArchiveCorruptTest, FromPartsClampsCapacityDefensively) {
  // Even if a caller bypasses validation, the sketch never holds more
  // entries than its capacity claims (eviction math would corrupt).
  std::vector<TopFlowSketch::Entry> entries = {{"a", 10, 0}, {"b", 5, 0}};
  const TopFlowSketch s = TopFlowSketch::from_parts(0, 0, std::move(entries));
  EXPECT_GE(s.capacity(), s.entries().size());
}

TEST_F(ArchiveCorruptTest, EntriesAboveCapacityRejectedAtDecode) {
  std::vector<std::uint8_t> payload = encode_record(sketch_record());
  EpochRecord out;
  ASSERT_TRUE(decode_record(payload, &out));  // Sanity: untampered decodes.

  put_u32_at(payload, capacity_offset(payload), 1);  // 3 entries, cap 1.
  EXPECT_FALSE(decode_record(payload, &out));

  put_u32_at(payload, capacity_offset(payload), 0);  // 3 entries, cap 0.
  EXPECT_FALSE(decode_record(payload, &out));
}

TEST_F(ArchiveCorruptTest, ErrorAboveCountRejectedAtDecode) {
  std::vector<std::uint8_t> payload = encode_record(sketch_record());
  const std::size_t off = last_error_offset(payload);
  for (std::size_t i = 0; i < 8; ++i) payload[off + i] = 0xFF;
  EpochRecord out;
  EXPECT_FALSE(decode_record(payload, &out));
}

TEST_F(ArchiveCorruptTest, HostileSketchInFileCountsAsCorruptBlock) {
  // The block frames and checksums correctly — only the decoded sketch is
  // hostile. The reader must skip it and count it, same as a CRC failure.
  std::vector<std::uint8_t> payload = encode_record(sketch_record());
  put_u32_at(payload, capacity_offset(payload), 0);
  write_archive_with_payload(payload);

  const std::uint64_t corrupt_before =
      counter_value("patchwork_archive_corrupt_blocks_total");
  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_TRUE(reader.records().empty());
  EXPECT_EQ(reader.corrupt_blocks(), 1u);
  EXPECT_EQ(counter_value("patchwork_archive_corrupt_blocks_total"),
            corrupt_before + 1);
}

TEST_F(ArchiveCorruptTest, AbsurdSupersedeMarkerCountsRejected) {
  // A marker claiming 2^32-1 commits must fail the bounds check instead of
  // allocating; same for a commit claiming an absurd replaced list.
  std::vector<std::uint8_t> huge;
  util::put_be32(huge, 0xFFFFFFFFu);
  SupersedeMarker marker;
  EXPECT_FALSE(decode_supersede_marker(huge, &marker));

  SupersedeMarker one;
  one.commits.push_back({{"x", 1, 0, 1}, {}});
  std::vector<std::uint8_t> payload = encode_supersede_marker(one);
  // The replaced-count field is the last u32; inflate it.
  const std::size_t off = payload.size() - 4;
  payload[off] = payload[off + 1] = payload[off + 2] = payload[off + 3] = 0xFF;
  EXPECT_FALSE(decode_supersede_marker(payload, &marker));

  // A hostile marker inside a file is skipped and counted, not fatal.
  std::vector<std::uint8_t> file = encode_file_header();
  append_block(file, BlockType::kSupersede, huge);
  ASSERT_TRUE(util::write_file_atomic(
      path_, std::span<const std::uint8_t>(file)));
  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_EQ(reader.corrupt_blocks(), 1u);
}

}  // namespace
}  // namespace patchwork::archive
