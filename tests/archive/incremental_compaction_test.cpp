// Incremental compaction commits: bounded append instead of whole-file
// rewrite, idempotent replay, crash recovery mid-commit, and GC.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "archive/compactor.hpp"
#include "archive/query.hpp"
#include "archive/reader.hpp"
#include "archive/writer.hpp"
#include "util/file_io.hpp"

namespace patchwork::archive {
namespace {

class IncrementalCompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/patchwork_incremental_test.pwar";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  EpochRecord record(std::uint64_t n) {
    EpochRecord r;
    r.label = "e" + std::to_string(n);
    r.start_nanos = n * 100;
    r.duration_nanos = 100;
    r.frames = 1000 + n;
    r.samples = 2;
    r.flow_snippets = 10 + n;
    r.frame_sizes.edges = {64, 1519, 9217};
    r.frame_sizes.counts = {n + 1, 2 * n + 1};
    SiteEpochLoad site;
    site.site = n % 2 == 0 ? "STAR" : "DALL";
    site.frames = 500 + n;
    r.site_loads.push_back(site);
    TopFlowSketch sketch(8);
    for (std::uint64_t i = 0; i < 5; ++i) {
      sketch.insert("f" + std::to_string((n + i) % 9), 100 * (n + 1));
    }
    r.top_flows = std::move(sketch);
    r.manifest_json = "{\"epoch\": " + std::to_string(n) + "}";
    return r;
  }

  void write_epochs(std::uint64_t n) {
    ArchiveWriter writer;
    ASSERT_EQ(writer.open(path_), OpenError::kNone);
    for (std::uint64_t i = 0; i < n; ++i) ASSERT_TRUE(writer.append(record(i)));
  }

  std::vector<std::uint8_t> file_bytes() {
    auto bytes = util::read_file_bytes(path_, kMaxArchiveBytes);
    EXPECT_TRUE(bytes.has_value());
    return bytes.value_or(std::vector<std::uint8_t>{});
  }

  std::string path_;
};

TEST_F(IncrementalCompactionTest, CommitAppendsWithoutRewritingTheFile) {
  write_epochs(12);
  const std::vector<std::uint8_t> before = file_bytes();

  CompactionOptions options;
  options.storage_budget_bytes = before.size() / 2;
  options.group_size = 4;
  const CompactionResult result = compact_archive(path_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.changed);
  EXPECT_FALSE(result.gc);
  EXPECT_GT(result.rollups_committed, 0u);
  EXPECT_LT(result.records_after, result.records_before);

  // The original bytes are untouched — the commit is a pure append whose
  // size is bounded by the rollups, not the archive.
  const std::vector<std::uint8_t> after = file_bytes();
  ASSERT_GT(after.size(), before.size());
  EXPECT_TRUE(std::equal(before.begin(), before.end(), after.begin()));
  EXPECT_EQ(after.size() - before.size(), result.bytes_appended);
  EXPECT_LT(result.bytes_appended, before.size());

  // The logical view shrank to the compacted records and stays under
  // budget even though the physical file grew.
  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_EQ(reader.records().size(), result.records_after);
  EXPECT_LE(kFileHeaderSize + reader.live_bytes(),
            options.storage_budget_bytes);
  EXPECT_GT(reader.superseded_records(), 0u);
  EXPECT_EQ(reader.orphan_pending(), 0u);
}

TEST_F(IncrementalCompactionTest, CommitPreservesSumQueries) {
  write_epochs(10);
  OpenError error = OpenError::kNone;
  const ArchiveQuery raw = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);

  CompactionOptions options;
  options.storage_budget_bytes = util::file_size_bytes(path_).value_or(0) / 3;
  ASSERT_TRUE(compact_archive(path_, options).ok());

  const ArchiveQuery compacted = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);
  EXPECT_LT(compacted.record_count(), raw.record_count());
  EXPECT_EQ(compacted.epochs_covered(), raw.epochs_covered());
  EXPECT_EQ(compacted.totals().frames, raw.totals().frames);
  EXPECT_EQ(compacted.totals().frame_sizes, raw.totals().frame_sizes);
  EXPECT_EQ(compacted.totals().site_loads, raw.totals().site_loads);
  EXPECT_EQ(compacted.totals().flow_snippets, raw.totals().flow_snippets);
}

TEST_F(IncrementalCompactionTest, SecondRunIsAByteLevelNoOp) {
  write_epochs(12);
  CompactionOptions options;
  options.storage_budget_bytes = util::file_size_bytes(path_).value_or(0) / 2;
  ASSERT_TRUE(compact_archive(path_, options).ok());

  const std::vector<std::uint8_t> after_first = file_bytes();
  const CompactionResult second = compact_archive(path_, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.changed);
  EXPECT_EQ(second.bytes_appended, 0u);
  EXPECT_EQ(file_bytes(), after_first);
}

TEST_F(IncrementalCompactionTest, CrashBeforeMarkerLeavesRawRecordsLive) {
  write_epochs(12);
  const std::vector<std::uint8_t> before = file_bytes();
  OpenError error = OpenError::kNone;
  const ArchiveQuery raw = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);

  CompactionOptions options;
  options.storage_budget_bytes = before.size() / 2;
  const CompactionResult commit = compact_archive(path_, options);
  ASSERT_TRUE(commit.ok());
  ASSERT_GT(commit.bytes_appended, 0u);

  // Simulate a crash mid-commit: cut the append so the supersede marker
  // (the last block) is lost but at least one pending rollup survives
  // complete. The raw records must be authoritative again.
  ASSERT_TRUE(util::truncate_file(path_, before.size() +
                                             commit.bytes_appended / 2));
  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_EQ(reader.records().size(), raw.record_count());
  const ArchiveQuery recovered = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);
  EXPECT_TRUE(recovered.totals() == raw.totals());

  // Re-running compaction converges: same logical records as an
  // uninterrupted run, with the orphan left behind as garbage.
  const CompactionResult retry = compact_archive(path_, options);
  ASSERT_TRUE(retry.ok());
  ArchiveReader after;
  ASSERT_EQ(after.open(path_), OpenError::kNone);
  EXPECT_EQ(after.records().size(), commit.records_after);
  const ArchiveQuery converged = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);
  EXPECT_EQ(converged.totals().frames, raw.totals().frames);
  EXPECT_EQ(converged.totals().frame_sizes, raw.totals().frame_sizes);
  EXPECT_EQ(converged.epochs_covered(), raw.epochs_covered());
}

TEST_F(IncrementalCompactionTest, GcShedsGarbageWithoutChangingAnswers) {
  write_epochs(12);
  CompactionOptions options;
  options.storage_budget_bytes = util::file_size_bytes(path_).value_or(0) / 2;
  ASSERT_TRUE(compact_archive(path_, options).ok());

  OpenError error = OpenError::kNone;
  const ArchiveQuery before_gc = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);
  const std::uint64_t bytes_before = util::file_size_bytes(path_).value_or(0);

  const CompactionResult gc = gc_archive(path_);
  ASSERT_TRUE(gc.ok());
  EXPECT_TRUE(gc.changed);
  EXPECT_TRUE(gc.gc);
  EXPECT_LT(util::file_size_bytes(path_).value_or(0), bytes_before);

  const ArchiveQuery after_gc = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);
  EXPECT_TRUE(after_gc.records() == before_gc.records());
  EXPECT_TRUE(after_gc.totals() == before_gc.totals());

  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_EQ(reader.garbage_bytes(), 0u);
  // A second GC over the clean file is a byte-level no-op.
  const std::vector<std::uint8_t> clean = file_bytes();
  const CompactionResult second = gc_archive(path_);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.changed);
  EXPECT_EQ(file_bytes(), clean);
}

TEST_F(IncrementalCompactionTest, AutoGcTriggersOnGarbageFraction) {
  write_epochs(12);
  CompactionOptions options;
  options.storage_budget_bytes = util::file_size_bytes(path_).value_or(0) / 4;
  options.gc_garbage_fraction = 0.25;  // The first commit crosses this.
  const CompactionResult result = compact_archive(path_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.gc);
  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_EQ(reader.garbage_bytes(), 0u);
}

}  // namespace
}  // namespace patchwork::archive
