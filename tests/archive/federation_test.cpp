// Cross-archive federation: merge-then-query must equal the union query,
// origins must keep colliding deployments apart, and the merged bytes must
// be identical at any worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "archive/federation.hpp"
#include "archive/query.hpp"
#include "archive/reader.hpp"
#include "archive/writer.hpp"
#include "util/file_io.hpp"
#include "util/thread_pool.hpp"

namespace patchwork::archive {
namespace {

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    for (const char* name : {"fed_a.pwar", "fed_b.pwar", "fed_out.pwar"}) {
      std::remove((dir_ + "/" + name).c_str());
    }
  }
  void TearDown() override {
    for (const char* name : {"fed_a.pwar", "fed_b.pwar", "fed_out.pwar"}) {
      std::remove((dir_ + "/" + name).c_str());
    }
    util::set_thread_count(std::nullopt);
  }

  std::string path(const char* name) const { return dir_ + "/" + name; }

  // Both deployments label their weeks the same way and both start epoch
  // indices at 0 — exactly the collision federation must survive.
  EpochRecord record(std::uint64_t epoch, std::uint64_t start_nanos) {
    EpochRecord r;
    r.label = "week" + std::to_string(epoch);
    r.start_nanos = start_nanos;
    r.duration_nanos = 50;
    r.frames = 100 + epoch;
    r.samples = 1;
    r.flow_snippets = 3 + epoch;
    r.frame_sizes.edges = {64, 1519};
    r.frame_sizes.counts = {10 * (epoch + 1)};
    SiteEpochLoad site;
    site.site = "SITE" + std::to_string(epoch % 2);
    site.frames = 50;
    site.wire_bytes = 7000 + epoch;
    r.site_loads.push_back(site);
    TopFlowSketch sketch(4);
    sketch.insert("f" + std::to_string(epoch % 3), 100 * (epoch + 1));
    r.top_flows = std::move(sketch);
    return r;
  }

  // Interleaved start times: a at 0,200,400..., b at 100,300,500...
  void write_inputs(std::size_t per_archive = 4) {
    ArchiveWriter a, b;
    ASSERT_EQ(a.open(path("fed_a.pwar")), OpenError::kNone);
    ASSERT_EQ(b.open(path("fed_b.pwar")), OpenError::kNone);
    for (std::uint64_t n = 0; n < per_archive; ++n) {
      ASSERT_TRUE(a.append(record(n, n * 200)));
      ASSERT_TRUE(b.append(record(n, n * 200 + 100)));
    }
  }

  std::vector<FederationInput> inputs() const {
    return {{path("fed_a.pwar"), "alpha"}, {path("fed_b.pwar"), "beta"}};
  }

  std::string dir_;
};

TEST_F(FederationTest, MergeThenQueryEqualsUnionQuery) {
  write_inputs();
  const FederationResult result =
      merge_archives(inputs(), path("fed_out.pwar"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.archives_read, 2u);
  EXPECT_EQ(result.records_in, 8u);
  EXPECT_EQ(result.records_out, 8u);

  // Build the union by hand: stamp each side's origin, concatenate, and
  // sort with the published order — then compare full query results.
  ArchiveReader ra, rb;
  ASSERT_EQ(ra.open(path("fed_a.pwar")), OpenError::kNone);
  ASSERT_EQ(rb.open(path("fed_b.pwar")), OpenError::kNone);
  std::vector<EpochRecord> expected = ra.take_records();
  for (EpochRecord& r : expected) r.origin = "alpha";
  std::vector<EpochRecord> b_records = rb.take_records();
  for (EpochRecord& r : b_records) r.origin = "beta";
  expected.insert(expected.end(), b_records.begin(), b_records.end());
  std::stable_sort(expected.begin(), expected.end(), federated_record_less);
  const ArchiveQuery union_query(expected);

  OpenError error = OpenError::kNone;
  const ArchiveQuery merged =
      ArchiveQuery::from_file(path("fed_out.pwar"), &error);
  ASSERT_EQ(error, OpenError::kNone);
  ASSERT_EQ(merged.record_count(), union_query.record_count());
  EXPECT_TRUE(merged.records() == union_query.records());
  EXPECT_TRUE(merged.totals() == union_query.totals());
  EXPECT_TRUE(merged.top_flows(4) == union_query.top_flows(4));
  EXPECT_EQ(merged.epochs_covered(), union_query.epochs_covered());
}

TEST_F(FederationTest, OriginsKeepCollidingEpochIndicesApart) {
  write_inputs();
  ASSERT_TRUE(merge_archives(inputs(), path("fed_out.pwar")).ok());

  ArchiveReader reader;
  ASSERT_EQ(reader.open(path("fed_out.pwar")), OpenError::kNone);
  // Every (origin, span) identity is unique even though raw epoch indices
  // and labels collide across the two deployments.
  std::vector<RecordIdent> idents;
  for (const EpochRecord& r : reader.records()) {
    idents.push_back(record_ident(r));
    EXPECT_TRUE(r.origin == "alpha" || r.origin == "beta") << r.origin;
  }
  for (std::size_t i = 0; i < idents.size(); ++i) {
    for (std::size_t j = i + 1; j < idents.size(); ++j) {
      EXPECT_FALSE(idents[i] == idents[j]) << i << " vs " << j;
    }
  }
}

TEST_F(FederationTest, RefederationKeepsOriginalProvenance) {
  write_inputs();
  ASSERT_TRUE(merge_archives(inputs(), path("fed_out.pwar")).ok());
  // Merge the federated file again under a new origin: the records keep
  // their first-stamped origins instead of being re-tagged.
  ASSERT_TRUE(
      merge_archives({{path("fed_out.pwar"), "gamma"}}, path("fed_out.pwar"))
          .ok());
  ArchiveReader reader;
  ASSERT_EQ(reader.open(path("fed_out.pwar")), OpenError::kNone);
  for (const EpochRecord& r : reader.records()) {
    EXPECT_TRUE(r.origin == "alpha" || r.origin == "beta") << r.origin;
  }
}

TEST_F(FederationTest, MergedBytesAreIdenticalAcrossWorkerCounts) {
  write_inputs(6);
  std::vector<std::uint8_t> reference;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},
                                    std::size_t{2}, std::size_t{8}}) {
    util::set_thread_count(workers);
    ASSERT_TRUE(merge_archives(inputs(), path("fed_out.pwar")).ok());
    const auto bytes =
        util::read_file_bytes(path("fed_out.pwar"), kMaxArchiveBytes);
    ASSERT_TRUE(bytes.has_value());
    if (reference.empty()) {
      reference = *bytes;
    } else {
      EXPECT_EQ(*bytes, reference) << "workers=" << workers;
    }
  }
}

TEST_F(FederationTest, MissingInputFailsWithItsPath) {
  write_inputs();
  const FederationResult result = merge_archives(
      {{path("fed_a.pwar"), "alpha"}, {path("missing.pwar"), "ghost"}},
      path("fed_out.pwar"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, OpenError::kIo);
  EXPECT_EQ(result.failed_path, path("missing.pwar"));
}

}  // namespace
}  // namespace patchwork::archive
