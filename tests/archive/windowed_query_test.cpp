// Time-windowed queries, open-status damage surfacing, and the read-path
// response cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "archive/query.hpp"
#include "archive/query_cache.hpp"
#include "archive/reader.hpp"
#include "archive/writer.hpp"
#include "obs/metrics.hpp"
#include "util/file_io.hpp"

namespace patchwork::archive {
namespace {

class WindowedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/patchwork_windowed_test.pwar";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  EpochRecord record(std::uint64_t n) {
    EpochRecord r;
    r.label = "e" + std::to_string(n);
    r.start_nanos = 1000 + n * 100;  // Epoch n spans [1000+100n, 1100+100n].
    r.duration_nanos = 100;
    r.frames = 10;  // Identical per-epoch mass: totals count windowed epochs.
    r.samples = 1;
    r.frame_sizes.edges = {64, 1519};
    r.frame_sizes.counts = {10};
    return r;
  }

  void write_epochs(std::uint64_t n) {
    ArchiveWriter writer;
    ASSERT_EQ(writer.open(path_), OpenError::kNone);
    for (std::uint64_t i = 0; i < n; ++i) ASSERT_TRUE(writer.append(record(i)));
  }

  std::uint64_t counter_value(const std::string& name) {
    for (const auto& v : obs::registry().snapshot_values()) {
      if (v.name == name) return v.count;
    }
    return 0;
  }

  std::string path_;
};

TEST_F(WindowedQueryTest, EpochWindowFiltersBeforeTheFold) {
  write_epochs(10);
  QueryWindow window;
  window.from_epoch = 3;
  window.to_epoch = 6;
  OpenStatus status;
  const ArchiveQuery query = ArchiveQuery::from_file(path_, window, &status);
  ASSERT_TRUE(status.clean());
  EXPECT_EQ(query.record_count(), 4u);  // Epochs 3,4,5,6 inclusive.
  EXPECT_EQ(query.totals().frames, 40u);
  EXPECT_EQ(query.totals().first_epoch, 3u);
  EXPECT_EQ(query.totals().last_epoch, 6u);
  // Trend points cover only the window.
  const auto points = query.jumbo_share();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points.front().label, "e3");
  EXPECT_EQ(points.back().label, "e6");
}

TEST_F(WindowedQueryTest, NanosWindowUsesOverlapNotContainment) {
  write_epochs(10);
  QueryWindow window;
  // [1250, 1350] overlaps epoch 1 ([1100,1200])? No. Epoch 2 spans
  // [1200,1300] -> overlaps; epoch 3 spans [1300,1400] -> touches 1350.
  window.from_nanos = 1250;
  window.to_nanos = 1350;
  const ArchiveQuery query = ArchiveQuery::from_file(path_, window, nullptr);
  ASSERT_EQ(query.record_count(), 2u);
  EXPECT_EQ(query.records()[0].label, "e2");
  EXPECT_EQ(query.records()[1].label, "e3");

  // Epoch and nanos bounds compose (intersection).
  window.from_epoch = 3;
  const ArchiveQuery both = ArchiveQuery::from_file(path_, window, nullptr);
  ASSERT_EQ(both.record_count(), 1u);
  EXPECT_EQ(both.records()[0].label, "e3");

  // An empty window folds to an empty total, not a crash.
  QueryWindow nothing;
  nothing.from_epoch = 90;
  const ArchiveQuery none = ArchiveQuery::from_file(path_, nothing, nullptr);
  EXPECT_EQ(none.record_count(), 0u);
  EXPECT_EQ(none.totals().frames, 0u);
}

TEST_F(WindowedQueryTest, OpenStatusSurfacesDamageDiagnostics) {
  // Regression: from_file used to discard the reader's damage counters, so
  // a query over a half-eaten archive looked identical to a healthy one.
  write_epochs(3);
  const std::uint64_t file_size = util::file_size_bytes(path_).value_or(0);

  auto bytes = util::read_file_bytes(path_, kMaxArchiveBytes);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[kFileHeaderSize + kBlockHeaderSize + 3] ^= 0x40;  // Flip one bit.
  ASSERT_TRUE(util::write_file_atomic(
      path_, std::span<const std::uint8_t>(*bytes)));

  OpenStatus status;
  const ArchiveQuery query =
      ArchiveQuery::from_file(path_, QueryWindow{}, &status);
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(status.clean());
  EXPECT_EQ(status.corrupt_blocks, 1u);
  EXPECT_FALSE(status.damaged_tail);
  EXPECT_EQ(status.valid_bytes, file_size);
  EXPECT_EQ(query.record_count(), 2u);  // The damaged record is skipped.

  // A truncated tail surfaces too.
  ASSERT_TRUE(util::truncate_file(path_, file_size - 5));
  const ArchiveQuery tail =
      ArchiveQuery::from_file(path_, QueryWindow{}, &status);
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(status.damaged_tail);
  EXPECT_LT(status.valid_bytes, file_size);
  EXPECT_EQ(tail.record_count(), 1u);
}

TEST_F(WindowedQueryTest, QueryCacheHitsValidatesAndInvalidates) {
  write_epochs(4);
  QueryCache cache(4);
  const std::uint64_t hits_before =
      counter_value("patchwork_archive_query_cache_hits_total");
  const std::uint64_t misses_before =
      counter_value("patchwork_archive_query_cache_misses_total");

  OpenStatus status;
  const auto first = cache.get(path_, {}, &status);
  ASSERT_TRUE(status.clean());
  EXPECT_EQ(first->record_count(), 4u);
  EXPECT_EQ(counter_value("patchwork_archive_query_cache_misses_total"),
            misses_before + 1);

  // Unchanged file: a hit, and the exact same query object.
  const auto second = cache.get(path_, {}, &status);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(counter_value("patchwork_archive_query_cache_hits_total"),
            hits_before + 1);

  // A different window is a different entry.
  QueryWindow window;
  window.from_epoch = 2;
  const auto windowed = cache.get(path_, window, &status);
  EXPECT_EQ(windowed->record_count(), 2u);
  EXPECT_NE(windowed.get(), first.get());
  EXPECT_EQ(counter_value("patchwork_archive_query_cache_misses_total"),
            misses_before + 2);

  // Appending invalidates: size changes, the reload sees the new record.
  {
    ArchiveWriter writer;
    ASSERT_EQ(writer.open(path_), OpenError::kNone);
    ASSERT_TRUE(writer.append(record(4)));
  }
  const auto reloaded = cache.get(path_, {}, &status);
  EXPECT_EQ(reloaded->record_count(), 5u);
  EXPECT_NE(reloaded.get(), first.get());
  EXPECT_GE(
      counter_value("patchwork_archive_query_cache_invalidations_total"), 1u);

  // A missing file is an uncached failure.
  const auto missing = cache.get(path_ + ".gone", {}, &status);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(missing->record_count(), 0u);
}

TEST_F(WindowedQueryTest, QueryCacheEvictsLeastRecentlyUsed) {
  write_epochs(4);
  QueryCache cache(2);
  QueryWindow w1, w2, w3;
  w1.from_epoch = 1;
  w2.from_epoch = 2;
  w3.from_epoch = 3;
  (void)cache.get(path_, w1);
  (void)cache.get(path_, w2);
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get(path_, w3);  // Evicts w1.
  EXPECT_EQ(cache.size(), 2u);
  const std::uint64_t misses_before =
      counter_value("patchwork_archive_query_cache_misses_total");
  (void)cache.get(path_, w1);  // Reload: w1 was evicted.
  EXPECT_EQ(counter_value("patchwork_archive_query_cache_misses_total"),
            misses_before + 1);
}

}  // namespace
}  // namespace patchwork::archive
