// Failure-mode coverage for the on-disk archive: truncated tails, flipped
// bytes, version skew, and compaction idempotence.
#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "archive/compactor.hpp"
#include "archive/query.hpp"
#include "archive/reader.hpp"
#include "archive/writer.hpp"
#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/file_io.hpp"

namespace patchwork::archive {
namespace {

class ArchiveIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/patchwork_archive_io_test.pwar";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  EpochRecord record(std::uint64_t n) {
    EpochRecord r;
    r.label = "epoch" + std::to_string(n);
    r.start_nanos = n * 100;
    r.duration_nanos = 100;
    r.frames = 1000 + n;
    r.samples = 2;
    r.flow_snippets = 10 + n;
    r.frame_sizes.edges = {64, 1519, 9217};
    r.frame_sizes.counts = {n + 1, 2 * n + 1};
    SiteEpochLoad site;
    site.site = n % 2 == 0 ? "STAR" : "DALL";
    site.frames = 500 + n;
    site.wire_bytes = 1000 * (n + 1);
    r.site_loads.push_back(site);
    // More keys across the file than the sketch holds, so folds truncate
    // and the prefix-fold guarantee is exercised for real.
    TopFlowSketch sketch(8);
    for (std::uint64_t i = 0; i < 6; ++i) {
      sketch.insert("f" + std::to_string((n * 7 + i * 3) % 16),
                    100 * (n + 1) + 10 * i);
    }
    r.top_flows = std::move(sketch);
    r.manifest_json = "{\"epoch\": " + std::to_string(n) + "}";
    return r;
  }

  std::vector<std::uint8_t> file_bytes() {
    auto bytes = util::read_file_bytes(path_, kMaxArchiveBytes);
    EXPECT_TRUE(bytes.has_value());
    return bytes.value_or(std::vector<std::uint8_t>{});
  }

  std::uint64_t counter_value(const std::string& name) {
    for (const auto& v : obs::registry().snapshot_values()) {
      if (v.name == name) return v.count;
    }
    return 0;
  }

  std::string path_;
};

TEST_F(ArchiveIoTest, AppendReopenRoundTrip) {
  {
    ArchiveWriter writer;
    ASSERT_EQ(writer.open(path_), OpenError::kNone);
    EXPECT_EQ(writer.next_epoch_index(), 0u);
    ASSERT_TRUE(writer.append(record(0)));
    ASSERT_TRUE(writer.append(record(1)));
    EXPECT_EQ(writer.next_epoch_index(), 2u);
  }
  // Reopen: indices continue, records persist in order.
  ArchiveWriter writer;
  ASSERT_EQ(writer.open(path_), OpenError::kNone);
  EXPECT_EQ(writer.next_epoch_index(), 2u);
  ASSERT_TRUE(writer.append(record(2)));

  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  ASSERT_EQ(reader.records().size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(reader.records()[i].first_epoch, i);
    EXPECT_EQ(reader.records()[i].label, "epoch" + std::to_string(i));
    EXPECT_EQ(reader.records()[i].manifest_json,
              "{\"epoch\": " + std::to_string(i) + "}");
  }
  EXPECT_EQ(reader.corrupt_blocks(), 0u);
  EXPECT_FALSE(reader.damaged_tail());
}

TEST_F(ArchiveIoTest, TruncatedTailIsDroppedAndRecoveredOnOpen) {
  ArchiveWriter writer;
  ASSERT_EQ(writer.open(path_), OpenError::kNone);
  ASSERT_TRUE(writer.append(record(0)));
  ASSERT_TRUE(writer.append(record(1)));

  // Simulate a crash mid-append: chop the last 7 bytes.
  const std::vector<std::uint8_t> full = file_bytes();
  ASSERT_TRUE(util::truncate_file(path_, full.size() - 7));

  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_EQ(reader.records().size(), 1u);
  EXPECT_TRUE(reader.damaged_tail());
  EXPECT_EQ(reader.records()[0].label, "epoch0");

  // Writer open truncates the damage; appends then extend a clean file.
  ArchiveWriter recovered;
  ASSERT_EQ(recovered.open(path_), OpenError::kNone);
  EXPECT_EQ(recovered.next_epoch_index(), 1u);
  ASSERT_TRUE(recovered.append(record(1)));
  ArchiveReader after;
  ASSERT_EQ(after.open(path_), OpenError::kNone);
  EXPECT_EQ(after.records().size(), 2u);
  EXPECT_FALSE(after.damaged_tail());
  EXPECT_EQ(after.records()[1].first_epoch, 1u);
}

TEST_F(ArchiveIoTest, FlippedPayloadByteSkipsOneBlockAndCountsIt) {
  ArchiveWriter writer;
  ASSERT_EQ(writer.open(path_), OpenError::kNone);
  ASSERT_TRUE(writer.append(record(0)));
  const std::uint64_t first_end = util::file_size_bytes(path_).value_or(0);
  ASSERT_TRUE(writer.append(record(1)));
  ASSERT_TRUE(writer.append(record(2)));

  // Flip one byte inside the middle block's payload.
  std::vector<std::uint8_t> bytes = file_bytes();
  bytes[first_end + kBlockHeaderSize + 5] ^= 0x01;
  ASSERT_TRUE(util::write_file_atomic(
      path_, std::span<const std::uint8_t>(bytes)));

  const std::uint64_t corrupt_before =
      counter_value("patchwork_archive_corrupt_blocks_total");
  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_EQ(reader.corrupt_blocks(), 1u);
  EXPECT_FALSE(reader.damaged_tail());
  // Exactly the damaged block is gone; the one after it still loads.
  ASSERT_EQ(reader.records().size(), 2u);
  EXPECT_EQ(reader.records()[0].label, "epoch0");
  EXPECT_EQ(reader.records()[1].label, "epoch2");
  EXPECT_EQ(counter_value("patchwork_archive_corrupt_blocks_total"),
            corrupt_before + 1);
}

TEST_F(ArchiveIoTest, CorruptedLengthFieldDamagesTheTailOnly) {
  ArchiveWriter writer;
  ASSERT_EQ(writer.open(path_), OpenError::kNone);
  ASSERT_TRUE(writer.append(record(0)));
  const std::uint64_t first_end = util::file_size_bytes(path_).value_or(0);
  ASSERT_TRUE(writer.append(record(1)));

  // Blow up the second block's length field beyond kMaxBlockPayload.
  std::vector<std::uint8_t> bytes = file_bytes();
  bytes[first_end] = 0xFF;
  bytes[first_end + 1] = 0xFF;
  bytes[first_end + 2] = 0xFF;
  ASSERT_TRUE(util::write_file_atomic(
      path_, std::span<const std::uint8_t>(bytes)));

  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_TRUE(reader.damaged_tail());
  EXPECT_EQ(reader.valid_bytes(), first_end);
  ASSERT_EQ(reader.records().size(), 1u);
  EXPECT_EQ(reader.records()[0].label, "epoch0");
}

TEST_F(ArchiveIoTest, NewerFormatVersionRejectsCleanly) {
  ArchiveWriter writer;
  ASSERT_EQ(writer.open(path_), OpenError::kNone);
  ASSERT_TRUE(writer.append(record(0)));

  std::vector<std::uint8_t> bytes = file_bytes();
  bytes[4] = 0xFF;  // format_version hi byte: far newer than this build.
  ASSERT_TRUE(util::write_file_atomic(
      path_, std::span<const std::uint8_t>(bytes)));

  ArchiveReader reader;
  EXPECT_EQ(reader.open(path_), OpenError::kVersionTooNew);
  EXPECT_TRUE(reader.records().empty());
  // The writer refuses too — never append to a file we cannot parse.
  ArchiveWriter refuse;
  EXPECT_EQ(refuse.open(path_), OpenError::kVersionTooNew);
}

TEST_F(ArchiveIoTest, NewerPayloadVersionBlocksAreSkippedNotFatal) {
  ArchiveWriter writer;
  ASSERT_EQ(writer.open(path_), OpenError::kNone);
  ASSERT_TRUE(writer.append(record(0)));

  // Hand-craft a block with payload_version 200: framed and CRC-valid,
  // just newer than this reader.
  std::vector<std::uint8_t> bytes = file_bytes();
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  std::vector<std::uint8_t> block;
  append_block(block, BlockType::kEpoch, payload);
  block[5] = 200;  // payload_version — breaks the CRC...
  // ...so recompute it the way the writer would for that header.
  std::vector<std::uint8_t> covered(block.begin() + 4, block.begin() + 8);
  covered.insert(covered.end(), payload.begin(), payload.end());
  const std::uint32_t crc = util::crc32(covered);
  block[8] = static_cast<std::uint8_t>(crc >> 24);
  block[9] = static_cast<std::uint8_t>(crc >> 16);
  block[10] = static_cast<std::uint8_t>(crc >> 8);
  block[11] = static_cast<std::uint8_t>(crc);
  bytes.insert(bytes.end(), block.begin(), block.end());
  ASSERT_TRUE(util::write_file_atomic(
      path_, std::span<const std::uint8_t>(bytes)));

  ArchiveReader reader;
  ASSERT_EQ(reader.open(path_), OpenError::kNone);
  EXPECT_EQ(reader.records().size(), 1u);
  EXPECT_EQ(reader.skipped_newer_blocks(), 1u);
  EXPECT_EQ(reader.corrupt_blocks(), 0u);
}

TEST_F(ArchiveIoTest, BadMagicRejects) {
  ASSERT_TRUE(util::write_file_atomic(path_, std::string_view("GARBAGE!")));
  ArchiveReader reader;
  EXPECT_EQ(reader.open(path_), OpenError::kBadMagic);
  ArchiveReader missing;
  EXPECT_EQ(missing.open(path_ + ".does-not-exist"), OpenError::kIo);
}

TEST_F(ArchiveIoTest, CompactionRespectsBudgetAndIsIdempotent) {
  ArchiveWriter writer;
  ASSERT_EQ(writer.open(path_), OpenError::kNone);
  for (std::uint64_t n = 0; n < 12; ++n) ASSERT_TRUE(writer.append(record(n)));
  const std::uint64_t raw_size = util::file_size_bytes(path_).value_or(0);

  CompactionOptions options;
  options.storage_budget_bytes = raw_size / 2;
  options.group_size = 4;
  options.incremental = false;  // Exercise the whole-file rewrite commit.
  const CompactionResult first = compact_archive(path_, options);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.changed);
  EXPECT_TRUE(first.gc);
  EXPECT_LE(first.bytes_after, options.storage_budget_bytes);
  EXPECT_LT(first.records_after, first.records_before);

  // Idempotence: a second pass under the same budget rewrites nothing.
  const std::vector<std::uint8_t> after_first = file_bytes();
  const CompactionResult second = compact_archive(path_, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.changed);
  EXPECT_EQ(second.passes, 0u);
  EXPECT_EQ(file_bytes(), after_first);
}

TEST_F(ArchiveIoTest, CompactionPreservesSumQueriesAndEpochCoverage) {
  ArchiveWriter writer;
  ASSERT_EQ(writer.open(path_), OpenError::kNone);
  for (std::uint64_t n = 0; n < 10; ++n) ASSERT_TRUE(writer.append(record(n)));

  OpenError error = OpenError::kNone;
  const ArchiveQuery raw = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);

  CompactionOptions options;
  options.storage_budget_bytes =
      util::file_size_bytes(path_).value_or(0) / 3;
  const CompactionResult result = compact_archive(path_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.changed);

  const ArchiveQuery compacted = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);
  EXPECT_LT(compacted.record_count(), raw.record_count());
  EXPECT_EQ(compacted.epochs_covered(), raw.epochs_covered());
  // Whole-archive sums are exactly preserved.
  EXPECT_EQ(compacted.totals().frames, raw.totals().frames);
  EXPECT_EQ(compacted.totals().flow_snippets, raw.totals().flow_snippets);
  EXPECT_EQ(compacted.totals().frame_sizes, raw.totals().frame_sizes);
  EXPECT_EQ(compacted.totals().site_loads, raw.totals().site_loads);
  EXPECT_EQ(compacted.totals().first_epoch, raw.totals().first_epoch);
  EXPECT_EQ(compacted.totals().last_epoch, raw.totals().last_epoch);
}

TEST_F(ArchiveIoTest, SinglePrefixRollupPreservesTopFlowsExactly) {
  // Fold guarantee in its exact form: compact everything into ONE rollup
  // (the left fold) and compare against the query's own left fold of the
  // raw records — identical entries, errors, and floor.
  ArchiveWriter writer;
  ASSERT_EQ(writer.open(path_), OpenError::kNone);
  for (std::uint64_t n = 0; n < 8; ++n) ASSERT_TRUE(writer.append(record(n)));

  OpenError error = OpenError::kNone;
  const ArchiveQuery raw = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);

  CompactionOptions options;
  options.storage_budget_bytes = 1;  // Forces a full fold.
  options.group_size = 64;           // One group covers every record.
  ASSERT_TRUE(compact_archive(path_, options).ok());

  const ArchiveQuery folded = ArchiveQuery::from_file(path_, &error);
  ASSERT_EQ(error, OpenError::kNone);
  ASSERT_EQ(folded.record_count(), 1u);
  EXPECT_TRUE(folded.totals().top_flows == raw.totals().top_flows);
}

}  // namespace
}  // namespace patchwork::archive
