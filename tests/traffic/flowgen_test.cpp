#include "traffic/flowgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "net/parser.hpp"

namespace patchwork::traffic {
namespace {

SiteWorkloadProfile default_profile() {
  util::Rng rng(3);
  return make_site_profiles(rng, 1).front();
}

TEST(FlowGen, DrawFlowRespectsProfileStructure) {
  util::Rng rng(1);
  const SiteWorkloadProfile profile = default_profile();
  for (int i = 0; i < 200; ++i) {
    const FlowSpec flow = draw_flow(rng, profile);
    EXPECT_TRUE(flow.src_ip.in_ten_slash_eight());
    EXPECT_TRUE(flow.dst_ip.in_ten_slash_eight());
    EXPECT_GE(flow.total_bytes, 64u);
    if (flow.pseudowire) {
      EXPECT_FALSE(flow.mpls_labels.empty());
    }
  }
}

TEST(FlowGen, DataFrameParsesWithExpectedStack) {
  util::Rng rng(2);
  SiteWorkloadProfile profile = default_profile();
  for (int i = 0; i < 100; ++i) {
    const FlowSpec flow = draw_flow(rng, profile);
    const net::Frame frame = make_data_frame(flow, 1000);
    const net::ParsedFrame parsed = net::parse_frame(frame);
    ASSERT_FALSE(parsed.layers.empty());
    EXPECT_EQ(parsed.layers.front().protocol, net::Protocol::kEthernet);
    EXPECT_FALSE(parsed.has(net::Protocol::kMalformed))
        << parsed.stack_string();
    // Tags survive into the parse for flow classification.
    if (flow.vlan_id) {
      EXPECT_FALSE(parsed.vlan_ids.empty());
    }
    EXPECT_EQ(parsed.mpls_labels.size(), flow.mpls_labels.size());
  }
}

TEST(FlowGen, AckFramesAreMinimumSizeReverseDirection) {
  util::Rng rng(4);
  SiteWorkloadProfile profile = default_profile();
  FlowSpec flow;
  do {
    flow = draw_flow(rng, profile);
  } while (!app_is_tcp(flow.app) || flow.ipv6);
  const net::Frame ack = make_ack_frame(flow, 0);
  EXPECT_LE(ack.wire_length(), 127u);  // Paper's 65-127 B ACK bucket.
  const net::ParsedFrame parsed = net::parse_frame(ack);
  ASSERT_TRUE(parsed.tcp.has_value());
  EXPECT_EQ(parsed.tcp->dst_port, flow.src_port);
  EXPECT_EQ(parsed.tcp->src_port, flow.dst_port);
  ASSERT_TRUE(parsed.ipv4.has_value());
  EXPECT_EQ(parsed.ipv4->src, flow.dst_ip);
  EXPECT_EQ(parsed.ipv4->dst, flow.src_ip);
  // Stack ends at TCP: payload-free ACK.
  EXPECT_EQ(parsed.layers.back().protocol, net::Protocol::kTcp);
}

TEST(FlowGen, WindowRespectsTargetRate) {
  util::Rng rng(5);
  SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 1e9;
  params.max_frames = 100000;
  const WindowTraffic window = generate_window(rng, profile, params);
  EXPECT_DOUBLE_EQ(window.offered_bps, 1e9);
  EXPECT_GT(window.offered_pps, 0.0);
  EXPECT_FALSE(window.frames.empty());
  // The true stream (offered_pps at the rendered frames' mean size) must
  // carry approximately the target byte volume.
  double rendered_bytes = 0.0;
  for (const net::Frame& f : window.frames) {
    rendered_bytes += static_cast<double>(f.wire_length());
  }
  const double mean_frame =
      rendered_bytes / static_cast<double>(window.frames.size());
  const double implied_bytes = window.offered_pps * 20.0 * mean_frame;
  const double target_bytes = 1e9 * 20.0 / 8.0;
  EXPECT_GT(implied_bytes, 0.5 * target_bytes);
  EXPECT_LT(implied_bytes, 2.0 * target_bytes);
}

TEST(FlowGen, WindowRenderingCapScalesDown) {
  util::Rng rng(6);
  SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 50e9;  // Far too many frames to render fully.
  params.max_frames = 5000;
  const WindowTraffic window = generate_window(rng, profile, params);
  EXPECT_LE(window.frames.size(), 7000u);  // Cap plus stochastic slack.
  // True rate is still reported: 50 Gbps of ~1500-2000 B frames is
  // millions of frames over 20 s.
  EXPECT_GT(window.offered_pps * 20.0, 1e6);
}

TEST(FlowGen, WindowFramesAreTimeOrderedWithinWindow) {
  util::Rng rng(7);
  SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 1e8;
  const WindowTraffic window = generate_window(rng, profile, params);
  for (std::size_t i = 1; i < window.frames.size(); ++i) {
    EXPECT_LE(window.frames[i - 1].timestamp(), window.frames[i].timestamp());
  }
  for (const net::Frame& f : window.frames) {
    EXPECT_LT(f.timestamp(), params.duration);
  }
}

TEST(FlowGen, ZeroRateWindowIsEmpty) {
  util::Rng rng(8);
  SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.target_bps = 0.0;
  const WindowTraffic window = generate_window(rng, profile, params);
  EXPECT_TRUE(window.frames.empty());
  EXPECT_DOUBLE_EQ(window.offered_pps, 0.0);
}

TEST(FlowGen, TcpAppsProduceAcks) {
  util::Rng rng(9);
  SiteWorkloadProfile profile = default_profile();
  // Force a TCP-dominant profile.
  std::fill(profile.app_weights.begin(), profile.app_weights.end(), 0.0);
  profile.app_weights[static_cast<std::size_t>(FlowApp::kIperfTcp)] = 1.0;
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 1e9;
  const WindowTraffic window = generate_window(rng, profile, params);
  std::size_t minis = 0;
  for (const net::Frame& f : window.frames) {
    if (f.wire_length() <= 127) ++minis;
  }
  // Roughly one delayed ACK per four data frames.
  EXPECT_GT(minis, window.frames.size() / 8);
}

TEST(FlowGen, RenderUnitIsBatchInvariant) {
  // Frame j of a unit depends only on (unit stream, j): rendering a unit
  // whole or in ragged batches must append identical bytes and timestamps.
  util::Rng rng(10);
  const SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 1e8;
  util::Rng plan_rng = rng.split(kWindowPlanStream);
  const WindowPlan plan = plan_window(plan_rng, profile, params);
  ASSERT_FALSE(plan.units.empty());

  net::FrameBuilder builder;
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    const RenderUnit& unit = plan.units[u];
    const util::RngBlock draws(rng.split(kWindowUnitStreamBase + u));

    net::FrameStore whole;
    render_unit(unit, draws, params.duration, 0, unit.frames, builder, whole);

    net::FrameStore batched;
    for (std::uint64_t begin = 0; begin < unit.frames; begin += 7) {
      const std::uint64_t end = std::min(begin + 7, unit.frames);
      render_unit(unit, draws, params.duration, begin, end, builder, batched);
    }

    ASSERT_EQ(whole.size(), batched.size()) << "unit " << u;
    ASSERT_EQ(whole.size(), unit.frames) << "unit " << u;
    for (std::size_t i = 0; i < whole.size(); ++i) {
      const net::FrameView a = whole.view(i);
      const net::FrameView b = batched.view(i);
      EXPECT_EQ(a.timestamp, b.timestamp) << "unit " << u << " frame " << i;
      ASSERT_EQ(a.bytes.size(), b.bytes.size())
          << "unit " << u << " frame " << i;
      EXPECT_TRUE(std::equal(a.bytes.begin(), a.bytes.end(), b.bytes.begin()))
          << "unit " << u << " frame " << i << " bytes differ";
    }
  }
}

TEST(FlowGen, RenderUnitMatchesPerFrameReferenceBuilds) {
  // The batched template-stamp path vs the scalar ground truth: frame j of
  // a unit must equal make_data_frame/make_ack_frame with seq = j * 1000
  // at timestamp bounded_at(j, 0, duration - 1), for every app the plan
  // draws (TCP-seq, DNS-id, ack, and no-varying-field stacks alike).
  util::Rng rng(12);
  const SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 1e8;
  util::Rng plan_rng = rng.split(kWindowPlanStream);
  const WindowPlan plan = plan_window(plan_rng, profile, params);
  ASSERT_FALSE(plan.units.empty());

  net::FrameBuilder builder;
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    const RenderUnit& unit = plan.units[u];
    const util::RngBlock draws(rng.split(kWindowUnitStreamBase + u));
    net::FrameStore store;
    render_unit(unit, draws, params.duration, 0, unit.frames, builder, store);
    ASSERT_EQ(store.size(), unit.frames) << "unit " << u;
    // Sample frames (all for small units) against the per-frame builders.
    const std::uint64_t step = std::max<std::uint64_t>(1, unit.frames / 16);
    for (std::uint64_t j = 0; j < unit.frames; j += step) {
      const util::Nanos t = draws.bounded_at(j, 0, params.duration - 1);
      const std::uint32_t seq = static_cast<std::uint32_t>(j) * 1000;
      const net::Frame expected = unit.acks
                                      ? make_ack_frame(unit.flow, t, seq)
                                      : make_data_frame(unit.flow, t, seq);
      const net::FrameView v = store.view(j);
      EXPECT_EQ(v.timestamp, expected.timestamp())
          << "unit " << u << " frame " << j;
      ASSERT_EQ(v.bytes.size(), expected.bytes().size())
          << "unit " << u << " frame " << j;
      EXPECT_TRUE(
          std::equal(v.bytes.begin(), v.bytes.end(), expected.bytes().begin()))
          << "unit " << u << " frame " << j << " bytes differ";
    }
  }
}

TEST(FlowGen, GenerateWindowMatchesManualPlanAndRender) {
  // generate_window is exactly fork → plan(kWindowPlanStream) →
  // render each unit off its substream → (timestamp, index) sort. A
  // by-hand composition from a same-seed parent must reproduce it.
  const SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 2e8;

  util::Rng direct_rng(11);
  const WindowTraffic window = generate_window(direct_rng, profile, params);

  util::Rng manual_rng(11);
  util::Rng child = manual_rng.fork();
  util::Rng plan_rng = child.split(kWindowPlanStream);
  const WindowPlan plan = plan_window(plan_rng, profile, params);
  EXPECT_DOUBLE_EQ(window.offered_pps, plan.offered_pps);
  EXPECT_DOUBLE_EQ(window.offered_bps, plan.offered_bps);
  EXPECT_EQ(window.flow_count, plan.flow_count);

  net::FrameStore store;
  net::FrameBuilder builder;
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    const util::RngBlock draws(child.split(kWindowUnitStreamBase + u));
    render_unit(plan.units[u], draws, params.duration, 0,
                plan.units[u].frames, builder, store);
  }
  std::vector<std::size_t> order(store.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const util::Nanos ta = store.view(a).timestamp;
    const util::Nanos tb = store.view(b).timestamp;
    return ta != tb ? ta < tb : a < b;
  });

  ASSERT_EQ(window.frames.size(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const net::FrameView v = store.view(order[i]);
    const net::Frame& f = window.frames[i];
    EXPECT_EQ(f.timestamp(), v.timestamp) << "frame " << i;
    EXPECT_EQ(f.wire_length(), v.wire_length) << "frame " << i;
    ASSERT_EQ(f.bytes().size(), v.bytes.size()) << "frame " << i;
    EXPECT_TRUE(
        std::equal(f.bytes().begin(), f.bytes().end(), v.bytes.begin()))
        << "frame " << i << " bytes differ";
  }
  // Both parents advanced identically: their next draws agree.
  EXPECT_EQ(direct_rng.bits(), manual_rng.bits());
}

}  // namespace
}  // namespace patchwork::traffic
