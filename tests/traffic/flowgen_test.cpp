#include "traffic/flowgen.hpp"

#include <gtest/gtest.h>

#include "net/parser.hpp"

namespace patchwork::traffic {
namespace {

SiteWorkloadProfile default_profile() {
  util::Rng rng(3);
  return make_site_profiles(rng, 1).front();
}

TEST(FlowGen, DrawFlowRespectsProfileStructure) {
  util::Rng rng(1);
  const SiteWorkloadProfile profile = default_profile();
  for (int i = 0; i < 200; ++i) {
    const FlowSpec flow = draw_flow(rng, profile);
    EXPECT_TRUE(flow.src_ip.in_ten_slash_eight());
    EXPECT_TRUE(flow.dst_ip.in_ten_slash_eight());
    EXPECT_GE(flow.total_bytes, 64u);
    if (flow.pseudowire) {
      EXPECT_FALSE(flow.mpls_labels.empty());
    }
  }
}

TEST(FlowGen, DataFrameParsesWithExpectedStack) {
  util::Rng rng(2);
  SiteWorkloadProfile profile = default_profile();
  for (int i = 0; i < 100; ++i) {
    const FlowSpec flow = draw_flow(rng, profile);
    const net::Frame frame = make_data_frame(flow, 1000);
    const net::ParsedFrame parsed = net::parse_frame(frame);
    ASSERT_FALSE(parsed.layers.empty());
    EXPECT_EQ(parsed.layers.front().protocol, net::Protocol::kEthernet);
    EXPECT_FALSE(parsed.has(net::Protocol::kMalformed))
        << parsed.stack_string();
    // Tags survive into the parse for flow classification.
    if (flow.vlan_id) {
      EXPECT_FALSE(parsed.vlan_ids.empty());
    }
    EXPECT_EQ(parsed.mpls_labels.size(), flow.mpls_labels.size());
  }
}

TEST(FlowGen, AckFramesAreMinimumSizeReverseDirection) {
  util::Rng rng(4);
  SiteWorkloadProfile profile = default_profile();
  FlowSpec flow;
  do {
    flow = draw_flow(rng, profile);
  } while (!app_is_tcp(flow.app) || flow.ipv6);
  const net::Frame ack = make_ack_frame(flow, 0);
  EXPECT_LE(ack.wire_length(), 127u);  // Paper's 65-127 B ACK bucket.
  const net::ParsedFrame parsed = net::parse_frame(ack);
  ASSERT_TRUE(parsed.tcp.has_value());
  EXPECT_EQ(parsed.tcp->dst_port, flow.src_port);
  EXPECT_EQ(parsed.tcp->src_port, flow.dst_port);
  ASSERT_TRUE(parsed.ipv4.has_value());
  EXPECT_EQ(parsed.ipv4->src, flow.dst_ip);
  EXPECT_EQ(parsed.ipv4->dst, flow.src_ip);
  // Stack ends at TCP: payload-free ACK.
  EXPECT_EQ(parsed.layers.back().protocol, net::Protocol::kTcp);
}

TEST(FlowGen, WindowRespectsTargetRate) {
  util::Rng rng(5);
  SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 1e9;
  params.max_frames = 100000;
  const WindowTraffic window = generate_window(rng, profile, params);
  EXPECT_DOUBLE_EQ(window.offered_bps, 1e9);
  EXPECT_GT(window.offered_pps, 0.0);
  EXPECT_FALSE(window.frames.empty());
  // The true stream (offered_pps at the rendered frames' mean size) must
  // carry approximately the target byte volume.
  double rendered_bytes = 0.0;
  for (const net::Frame& f : window.frames) {
    rendered_bytes += static_cast<double>(f.wire_length());
  }
  const double mean_frame =
      rendered_bytes / static_cast<double>(window.frames.size());
  const double implied_bytes = window.offered_pps * 20.0 * mean_frame;
  const double target_bytes = 1e9 * 20.0 / 8.0;
  EXPECT_GT(implied_bytes, 0.5 * target_bytes);
  EXPECT_LT(implied_bytes, 2.0 * target_bytes);
}

TEST(FlowGen, WindowRenderingCapScalesDown) {
  util::Rng rng(6);
  SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 50e9;  // Far too many frames to render fully.
  params.max_frames = 5000;
  const WindowTraffic window = generate_window(rng, profile, params);
  EXPECT_LE(window.frames.size(), 7000u);  // Cap plus stochastic slack.
  // True rate is still reported: 50 Gbps of ~1500-2000 B frames is
  // millions of frames over 20 s.
  EXPECT_GT(window.offered_pps * 20.0, 1e6);
}

TEST(FlowGen, WindowFramesAreTimeOrderedWithinWindow) {
  util::Rng rng(7);
  SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 1e8;
  const WindowTraffic window = generate_window(rng, profile, params);
  for (std::size_t i = 1; i < window.frames.size(); ++i) {
    EXPECT_LE(window.frames[i - 1].timestamp(), window.frames[i].timestamp());
  }
  for (const net::Frame& f : window.frames) {
    EXPECT_LT(f.timestamp(), params.duration);
  }
}

TEST(FlowGen, ZeroRateWindowIsEmpty) {
  util::Rng rng(8);
  SiteWorkloadProfile profile = default_profile();
  WindowParams params;
  params.target_bps = 0.0;
  const WindowTraffic window = generate_window(rng, profile, params);
  EXPECT_TRUE(window.frames.empty());
  EXPECT_DOUBLE_EQ(window.offered_pps, 0.0);
}

TEST(FlowGen, TcpAppsProduceAcks) {
  util::Rng rng(9);
  SiteWorkloadProfile profile = default_profile();
  // Force a TCP-dominant profile.
  std::fill(profile.app_weights.begin(), profile.app_weights.end(), 0.0);
  profile.app_weights[static_cast<std::size_t>(FlowApp::kIperfTcp)] = 1.0;
  WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 1e9;
  const WindowTraffic window = generate_window(rng, profile, params);
  std::size_t minis = 0;
  for (const net::Frame& f : window.frames) {
    if (f.wire_length() <= 127) ++minis;
  }
  // Roughly one delayed ACK per four data frames.
  EXPECT_GT(minis, window.frames.size() / 8);
}

}  // namespace
}  // namespace patchwork::traffic
