#include "traffic/workload.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace patchwork::traffic {
namespace {

TEST(Workload, ProfilesAreDeterministicPerSeed) {
  util::Rng rng1(9), rng2(9);
  const auto a = make_site_profiles(rng1, 30);
  const auto b = make_site_profiles(rng2, 30);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mtu_frame_size, b[i].mtu_frame_size);
    EXPECT_EQ(a[i].app_weights, b[i].app_weights);
  }
}

TEST(Workload, SitesAreDiverse) {
  // Finding B1/B2: sites differ in protocol variety.
  util::Rng rng(9);
  const auto profiles = make_site_profiles(rng, 30);
  std::size_t min_apps = 100, max_apps = 0;
  for (const auto& p : profiles) {
    min_apps = std::min(min_apps, p.active_apps());
    max_apps = std::max(max_apps, p.active_apps());
  }
  EXPECT_LE(min_apps, 4u);  // Some throughput-only sites.
  EXPECT_GE(max_apps, 7u);  // Some app-diverse sites.
}

TEST(Workload, Ipv6StaysMarginal) {
  // Finding B6: IPv6 < ~2% of traffic overall.
  util::Rng rng(9);
  const auto profiles = make_site_profiles(rng, 30);
  util::RunningStats stats;
  for (const auto& p : profiles) stats.add(p.ipv6_fraction);
  EXPECT_LT(stats.mean(), 0.04);
}

TEST(Workload, MostSitesAreJumboHeavy) {
  // Finding B5: jumbo frames are highly prevalent.
  util::Rng rng(9);
  const auto profiles = make_site_profiles(rng, 30);
  std::size_t jumbo_heavy = 0;
  for (const auto& p : profiles) {
    EXPECT_GT(p.mtu_frame_size, 1518u);  // Jumbo-capable MTU everywhere.
    if (p.jumbo_fraction > 0.6) ++jumbo_heavy;
  }
  EXPECT_GT(jumbo_heavy, profiles.size() / 2);
}

TEST(Workload, EncapsulationIsTheNorm) {
  util::Rng rng(9);
  const auto profiles = make_site_profiles(rng, 30);
  for (const auto& p : profiles) {
    EXPECT_GT(p.encapsulation.vlan_probability, 0.8);
    EXPECT_GT(p.encapsulation.mpls_probability, 0.5);
  }
}

TEST(Workload, AppWeightsNonNegativeAndSomeActive) {
  util::Rng rng(9);
  for (const auto& p : make_site_profiles(rng, 30)) {
    double total = 0.0;
    for (double w : p.app_weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_GT(total, 0.0);
  }
}

TEST(Workload, AppNames) {
  EXPECT_EQ(to_string(FlowApp::kIperfTcp), "iperf-tcp");
  EXPECT_EQ(to_string(FlowApp::kVxlan), "vxlan");
}

}  // namespace
}  // namespace patchwork::traffic
