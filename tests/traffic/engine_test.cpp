#include "traffic/engine.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace patchwork::traffic {
namespace {

struct EngineTest : ::testing::Test {
  EngineTest()
      : rng(11),
        fed(testbed::make_fabric_like_federation(rng)),
        engine(fed, activity, make_site_profiles(rng, fed.site_count()),
               rng.fork()) {}

  util::Rng rng;
  testbed::ActivityModel activity;
  testbed::Federation fed;
  TrafficEngine engine;
};

TEST(PortUtilization, DistributionMatchesSection5) {
  // Section 5 / R4.Q1: 50% of ports at <= ~38% utilization, some at line
  // rate.
  util::Rng rng(21);
  std::vector<double> draws;
  int line_rate = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = draw_port_utilization(rng, 1.0);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    draws.push_back(u);
    if (u >= 0.999) ++line_rate;
  }
  const double median = util::percentile(draws, 50.0);
  EXPECT_GT(median, 0.25);
  EXPECT_LT(median, 0.5);
  EXPECT_GT(line_rate, 200);  // ~4% of ports run at line rate.
}

TEST_F(EngineTest, UpdateLoadsSetsRatesWithinLineRate) {
  engine.update_loads(0);
  for (testbed::SiteId sid : fed.site_ids()) {
    const testbed::Site& site = fed.site(sid);
    for (std::uint32_t p = 0; p < site.tor().port_count(); ++p) {
      const auto& port = site.tor().port(testbed::PortId{p});
      EXPECT_GE(port.tx_rate_bps(), 0.0);
      EXPECT_LE(port.tx_rate_bps(), port.line_rate_bps() * 1.0001);
      EXPECT_LE(port.rx_rate_bps(), port.tx_rate_bps());
    }
  }
}

TEST_F(EngineTest, LoadsVaryOverTime) {
  // Finding B3: background network activity is highly variable.
  engine.update_loads(0);
  const double r0 = fed.site(testbed::SiteId{0})
                        .tor()
                        .port(testbed::PortId{2})
                        .tx_rate_bps();
  engine.update_loads(10 * util::kHour);
  const double r1 = fed.site(testbed::SiteId{0})
                        .tor()
                        .port(testbed::PortId{2})
                        .tx_rate_bps();
  // Some port somewhere must change; check this one or scan all.
  bool changed = r0 != r1;
  for (testbed::SiteId sid : fed.site_ids()) {
    if (changed) break;
    for (std::uint32_t p = 0; p < fed.site(sid).tor().port_count(); ++p) {
      engine.update_loads(0);
      const double a =
          fed.site(sid).tor().port(testbed::PortId{p}).tx_rate_bps();
      engine.update_loads(10 * util::kHour);
      const double b =
          fed.site(sid).tor().port(testbed::PortId{p}).tx_rate_bps();
      if (a != b) {
        changed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(changed);
}

TEST_F(EngineTest, SeasonalityScalesAggregateLoad) {
  // Aggregate offered load must follow the activity model (Fig. 6).
  auto total_at = [&](util::Nanos t) {
    engine.update_loads(t);
    double total = 0.0;
    for (testbed::SiteId sid : fed.site_ids()) {
      for (std::uint32_t p = 0; p < fed.site(sid).tor().port_count(); ++p) {
        total += fed.site(sid).tor().port(testbed::PortId{p}).tx_rate_bps();
      }
    }
    return total;
  };
  // Peak week (week 46) vs a quiet summer week (week 25).
  const double peak = total_at(static_cast<util::Nanos>(46.5 * 7) * util::kDay);
  const double lull = total_at(static_cast<util::Nanos>(25.5 * 7) * util::kDay);
  EXPECT_GT(peak, 1.5 * lull);
}

TEST_F(EngineTest, WindowForPortMatchesPortRate) {
  engine.update_loads(0);
  testbed::Site& site = fed.site(testbed::SiteId{0});
  site.tor().mutable_port(testbed::PortId{3}).set_rates(2e9, 1e9);
  const WindowTraffic window = engine.window_for_port(
      {testbed::SiteId{0}, testbed::PortId{3}}, 0, 20 * util::kSecond);
  // The mirror clones Tx+Rx: 3 Gbps offered.
  EXPECT_DOUBLE_EQ(window.offered_bps, 3e9);
  EXPECT_FALSE(window.frames.empty());
}

TEST_F(EngineTest, BaseUtilizationIsPersistent) {
  const double u1 =
      engine.base_utilization({testbed::SiteId{2}, testbed::PortId{4}});
  const double u2 =
      engine.base_utilization({testbed::SiteId{2}, testbed::PortId{4}});
  EXPECT_DOUBLE_EQ(u1, u2);
}

TEST_F(EngineTest, YearFractionWrapsAndOffsets) {
  EXPECT_NEAR(engine.year_fraction(0), 0.0, 1e-9);
  engine.set_year_start_offset(330 * util::kDay);  // Start in December.
  EXPECT_NEAR(engine.year_fraction(0), 330.0 / 365.0, 1e-6);
  EXPECT_NEAR(engine.year_fraction(40 * util::kDay), 5.0 / 365.0, 1e-6);
}

}  // namespace
}  // namespace patchwork::traffic
