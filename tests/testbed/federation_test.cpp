#include "testbed/federation.hpp"

#include <gtest/gtest.h>

namespace patchwork::testbed {
namespace {

TEST(Federation, FabricLikeShape) {
  util::Rng rng(1);
  FederationSpec spec;
  const Federation fed = make_fabric_like_federation(rng, spec);
  EXPECT_EQ(fed.site_count(), spec.sites);
  for (SiteId id : fed.site_ids()) {
    const Site& s = fed.site(id);
    const std::size_t up = s.tor().count_of_kind(PortKind::kUplink);
    const std::size_t down = s.tor().count_of_kind(PortKind::kDownlink);
    EXPECT_GE(up, spec.min_uplinks);
    EXPECT_LE(up, spec.max_uplinks);
    // Fig. 2's structural finding: every site has many more downlinks
    // than uplinks.
    EXPECT_GT(down, up);
  }
}

TEST(Federation, TeachingSiteHasNoDedicatedNics) {
  util::Rng rng(2);
  const Federation fed = make_fabric_like_federation(rng);
  std::size_t teaching = 0;
  for (SiteId id : fed.site_ids()) {
    const Site& s = fed.site(id);
    if (s.teaching_only()) {
      ++teaching;
      EXPECT_EQ(s.count_available_nics(NicKind::kDedicatedConnectX), 0u);
    } else {
      // The paper: sites usually have ~2-6 dedicated NICs.
      const std::size_t ded =
          s.count_available_nics(NicKind::kDedicatedConnectX);
      EXPECT_GE(ded, 2u);
      EXPECT_LE(ded, 6u);
    }
  }
  EXPECT_EQ(teaching, 1u);
}

TEST(Federation, DedicatedNicsAreDualPort) {
  util::Rng rng(3);
  const Federation fed = make_fabric_like_federation(rng);
  for (SiteId id : fed.site_ids()) {
    for (const Nic& nic : fed.site(id).nics()) {
      if (nic.kind == NicKind::kDedicatedConnectX) {
        EXPECT_EQ(nic.port_count(), 2u);
      }
    }
  }
}

TEST(Federation, LinksConnectDistinctSitesOnUplinkPorts) {
  util::Rng rng(4);
  const Federation fed = make_fabric_like_federation(rng);
  EXPECT_GE(fed.links().size(), fed.site_count());  // At least the ring.
  for (const InterSiteLink& link : fed.links()) {
    EXPECT_NE(link.a.site, link.b.site);
    EXPECT_EQ(fed.site(link.a.site).tor().port(link.a.port).kind(),
              PortKind::kUplink);
    EXPECT_EQ(fed.site(link.b.site).tor().port(link.b.port).kind(),
              PortKind::kUplink);
  }
}

TEST(Federation, PortInventoryMatchesSwitches) {
  util::Rng rng(5);
  const Federation fed = make_fabric_like_federation(rng);
  const auto inventory = port_inventory(fed);
  ASSERT_EQ(inventory.size(), fed.site_count());
  for (const SitePortInventory& row : inventory) {
    const Site& s = fed.site(row.site);
    EXPECT_EQ(row.uplinks, s.tor().count_of_kind(PortKind::kUplink));
    EXPECT_EQ(row.downlinks, s.tor().count_of_kind(PortKind::kDownlink));
    EXPECT_EQ(row.name, s.name());
  }
}

TEST(Federation, DeterministicForSeed) {
  util::Rng rng1(99), rng2(99);
  const Federation a = make_fabric_like_federation(rng1);
  const Federation b = make_fabric_like_federation(rng2);
  ASSERT_EQ(a.site_count(), b.site_count());
  for (SiteId id : a.site_ids()) {
    EXPECT_EQ(a.site(id).tor().port_count(), b.site(id).tor().port_count());
    EXPECT_EQ(a.site(id).nics().size(), b.site(id).nics().size());
  }
}

TEST(Federation, AdvancePropagatesToAllSwitches) {
  util::Rng rng(6);
  Federation fed = make_fabric_like_federation(rng);
  for (SiteId id : fed.site_ids()) {
    fed.site(id).tor().mutable_port(PortId{0}).set_rates(8e9, 8e9);
  }
  fed.advance(util::kSecond);
  for (SiteId id : fed.site_ids()) {
    EXPECT_EQ(fed.site(id).tor().port(PortId{0}).counters().tx_bytes, 1e9);
  }
}

TEST(Site, AvailableNicTracking) {
  util::Rng rng(7);
  Federation fed = make_fabric_like_federation(rng);
  Site& site = fed.site(SiteId{0});
  const auto before =
      site.count_available_nics(NicKind::kDedicatedConnectX);
  ASSERT_GT(before, 0u);
  const NicId nic = site.available_nics(NicKind::kDedicatedConnectX).front();
  site.mutable_nic(nic).allocated_to = SliceId{1};
  EXPECT_EQ(site.count_available_nics(NicKind::kDedicatedConnectX),
            before - 1);
}

}  // namespace
}  // namespace patchwork::testbed
