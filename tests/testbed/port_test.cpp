#include "testbed/port.hpp"

#include <gtest/gtest.h>

namespace patchwork::testbed {
namespace {

TEST(SwitchPort, AdvanceIntegratesRates) {
  SwitchPort p(PortKind::kDownlink, 100e9);
  p.set_rates(8e9, 4e9);  // 1 GB/s tx, 0.5 GB/s rx.
  p.advance(2 * util::kSecond);
  EXPECT_EQ(p.counters().tx_bytes, 2'000'000'000u);
  EXPECT_EQ(p.counters().rx_bytes, 1'000'000'000u);
}

TEST(SwitchPort, RatesClampedToLineRate) {
  SwitchPort p(PortKind::kDownlink, 10e9);
  p.set_rates(100e9, 0.0);  // Offered far above line rate.
  p.advance(util::kSecond);
  EXPECT_EQ(p.counters().tx_bytes, 10e9 / 8);
}

TEST(SwitchPort, FrameCountersUseMeanFrameSize) {
  SwitchPort p(PortKind::kDownlink, 100e9);
  p.set_mean_frame_size(1000.0);
  p.set_rates(8e6, 0.0);  // 1 MB/s.
  p.advance(util::kSecond);
  EXPECT_EQ(p.counters().tx_frames, 1000u);
}

TEST(SwitchPort, UtilizationIsBusierDirection) {
  SwitchPort p(PortKind::kUplink, 100e9);
  p.set_rates(38e9, 10e9);
  EXPECT_DOUBLE_EQ(p.utilization(), 0.38);
  p.set_rates(10e9, 90e9);
  EXPECT_DOUBLE_EQ(p.utilization(), 0.9);
}

TEST(SwitchPort, UtilizationCapsAtOne) {
  SwitchPort p(PortKind::kUplink, 10e9);
  p.set_rates(50e9, 0.0);
  EXPECT_DOUBLE_EQ(p.utilization(), 1.0);
}

TEST(SwitchPort, ZeroLineRatePortHasZeroUtilization) {
  SwitchPort p;
  EXPECT_DOUBLE_EQ(p.utilization(), 0.0);
}

}  // namespace
}  // namespace patchwork::testbed
