#include "testbed/allocator.hpp"

#include <gtest/gtest.h>

#include "testbed/federation.hpp"

namespace patchwork::testbed {
namespace {

struct AllocatorTest : ::testing::Test {
  AllocatorTest() : rng(1), fed(make_fabric_like_federation(rng)) {}

  Site& site() { return fed.site(SiteId{0}); }

  Allocator::Tuning no_failures() {
    Allocator::Tuning t;
    t.backend_failure_rate = 0.0;
    return t;
  }

  util::Rng rng;
  Federation fed;
};

TEST_F(AllocatorTest, GrantsDefaultPatchworkRequest) {
  Allocator alloc(site(), rng, no_failures());
  SliceRequest req;
  req.site = SiteId{0};
  req.vms.push_back(VmRequest{});  // 2 cores, 8GB, 100GB, 1 dedicated NIC.
  const AllocResult result = alloc.allocate(req);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.grant->vms.size(), 1u);
  EXPECT_EQ(result.grant->vms[0].nics.size(), 1u);
  // A dedicated dual-port NIC exposes two switch ports.
  EXPECT_EQ(result.grant->vms[0].nic_ports.size(), 2u);
}

TEST_F(AllocatorTest, AllocationConsumesResources) {
  Allocator alloc(site(), rng, no_failures());
  const auto nics_before =
      site().count_available_nics(NicKind::kDedicatedConnectX);
  SliceRequest req;
  req.site = SiteId{0};
  req.vms.push_back(VmRequest{});
  const AllocResult result = alloc.allocate(req);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(site().count_available_nics(NicKind::kDedicatedConnectX),
            nics_before - 1);
}

TEST_F(AllocatorTest, ReleaseRestoresResources) {
  Allocator alloc(site(), rng, no_failures());
  const auto nics_before =
      site().count_available_nics(NicKind::kDedicatedConnectX);
  const auto storage_before = site().total_free_storage();
  SliceRequest req;
  req.site = SiteId{0};
  req.vms.push_back(VmRequest{});
  const AllocResult result = alloc.allocate(req);
  ASSERT_TRUE(result.ok());
  alloc.release(*result.grant);
  EXPECT_EQ(site().count_available_nics(NicKind::kDedicatedConnectX),
            nics_before);
  EXPECT_EQ(site().total_free_storage(), storage_before);
}

TEST_F(AllocatorTest, DedicatedNicExhaustionReported) {
  Allocator alloc(site(), rng, no_failures());
  const auto available =
      site().count_available_nics(NicKind::kDedicatedConnectX);
  SliceRequest req;
  req.site = SiteId{0};
  req.vms.assign(available + 1, VmRequest{});
  EXPECT_EQ(alloc.can_satisfy(req), AllocError::kNoDedicatedNic);
  const AllocResult result = alloc.allocate(req);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, AllocError::kNoDedicatedNic);
}

TEST_F(AllocatorTest, FailedAllocationLeavesStateUntouched) {
  Allocator alloc(site(), rng, no_failures());
  const auto nics_before =
      site().count_available_nics(NicKind::kDedicatedConnectX);
  SliceRequest req;
  req.site = SiteId{0};
  req.vms.assign(nics_before + 5, VmRequest{});
  ASSERT_FALSE(alloc.allocate(req).ok());
  EXPECT_EQ(site().count_available_nics(NicKind::kDedicatedConnectX),
            nics_before);
}

TEST_F(AllocatorTest, CanSatisfyIsDryRun) {
  Allocator alloc(site(), rng, no_failures());
  SliceRequest req;
  req.site = SiteId{0};
  req.vms.push_back(VmRequest{});
  EXPECT_EQ(alloc.can_satisfy(req), std::nullopt);
  // Nothing consumed by the dry run.
  EXPECT_GT(site().count_available_nics(NicKind::kDedicatedConnectX), 0u);
}

TEST_F(AllocatorTest, StorageExhaustionReported) {
  Allocator alloc(site(), rng, no_failures());
  SliceRequest req;
  req.site = SiteId{0};
  VmRequest vm;
  vm.dedicated_nics = 0;
  vm.storage = 100ull << 40;  // 100 TB: more than any worker has.
  req.vms.push_back(vm);
  EXPECT_EQ(alloc.can_satisfy(req), AllocError::kNoStorage);
}

TEST_F(AllocatorTest, CpuExhaustionReported) {
  Allocator alloc(site(), rng, no_failures());
  SliceRequest req;
  req.site = SiteId{0};
  VmRequest vm;
  vm.dedicated_nics = 0;
  vm.cores = 100000;
  req.vms.push_back(vm);
  EXPECT_EQ(alloc.can_satisfy(req), AllocError::kNoCpu);
}

TEST_F(AllocatorTest, FpgaRequestHonoured) {
  // Find a site with an FPGA.
  for (SiteId id : fed.site_ids()) {
    Site& s = fed.site(id);
    if (s.count_available_nics(NicKind::kAlveoFpga) == 0) continue;
    Allocator alloc(s, rng, no_failures());
    SliceRequest req;
    req.site = id;
    VmRequest vm;
    vm.dedicated_nics = 0;
    vm.wants_fpga = true;
    req.vms.push_back(vm);
    const AllocResult result = alloc.allocate(req);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(s.nic(result.grant->vms[0].nics[0]).kind,
              NicKind::kAlveoFpga);
    return;
  }
  FAIL() << "no FPGA site in the federation";
}

TEST_F(AllocatorTest, BackendFailuresHappenAtConfiguredRate) {
  Allocator::Tuning t;
  t.backend_failure_rate = 1.0;  // Always fail.
  Allocator alloc(site(), rng, t);
  SliceRequest req;
  req.site = SiteId{0};
  req.vms.push_back(VmRequest{});
  const AllocResult result = alloc.allocate(req);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, AllocError::kBackendError);
}

TEST_F(AllocatorTest, LatencyGrowsSuperlinearlyWithSliceSize) {
  Allocator alloc(site(), rng, no_failures());
  // Section 8.3: large slices take disproportionately long to allocate,
  // which is why Patchwork prefers smaller slices.
  const util::Nanos small = alloc.allocation_latency(2);
  const util::Nanos big = alloc.allocation_latency(20);
  EXPECT_GT(big, 10 * small / 2);  // More than linear scaling.
}

TEST_F(AllocatorTest, DistinctSlicesGetDistinctIds) {
  Allocator alloc(site(), rng, no_failures());
  SliceRequest req;
  req.site = SiteId{0};
  req.vms.push_back(VmRequest{});
  const AllocResult a = alloc.allocate(req);
  const AllocResult b = alloc.allocate(req);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.grant->slice, b.grant->slice);
}

}  // namespace
}  // namespace patchwork::testbed
