#include "testbed/activity_model.hpp"

#include <gtest/gtest.h>

namespace patchwork::testbed {
namespace {

TEST(ActivityModel, MeanIsNormalizedToOne) {
  ActivityModel m;
  EXPECT_NEAR(m.mean_multiplier(), 1.0, 1e-9);
}

TEST(ActivityModel, PeakIsAtScWeek) {
  ActivityModel m;
  const double peak = m.peak_multiplier();
  EXPECT_DOUBLE_EQ(m.week_multiplier(ActivityModel::kPeakWeek), peak);
  // Fig. 6: the SC'24 spike towers over the rest of the year.
  EXPECT_GT(peak, 2.0);
}

TEST(ActivityModel, SpringRampExists) {
  ActivityModel m;
  // Ramp-up to April (week ~13): early April beats mid-February and the
  // post-deadline lull.
  EXPECT_GT(m.week_multiplier(13), m.week_multiplier(6));
  EXPECT_GT(m.week_multiplier(13), m.week_multiplier(20));
}

TEST(ActivityModel, FallRampLeadsIntoScPeak) {
  ActivityModel m;
  EXPECT_GT(m.week_multiplier(43), m.week_multiplier(30));
  EXPECT_GT(m.week_multiplier(46), m.week_multiplier(43));
}

TEST(ActivityModel, DecemberTailsOff) {
  ActivityModel m;
  EXPECT_LT(m.week_multiplier(51),
            m.week_multiplier(ActivityModel::kPeakWeek) / 2.0);
}

TEST(ActivityModel, AllMultipliersPositive) {
  ActivityModel m;
  for (std::size_t w = 0; w < ActivityModel::kWeeksPerYear; ++w) {
    EXPECT_GT(m.week_multiplier(w), 0.0) << "week " << w;
  }
}

TEST(ActivityModel, YearFractionInterpolatesSmoothly) {
  ActivityModel m;
  // Adjacent evaluations should not jump by more than adjacent weeks do.
  double prev = m.at_year_fraction(0.0);
  for (double f = 0.001; f < 1.0; f += 0.001) {
    const double cur = m.at_year_fraction(f);
    EXPECT_LT(std::abs(cur - prev), 1.0);
    prev = cur;
  }
}

TEST(ActivityModel, SeasonalSwingIsLarge) {
  // Fig. 5's stddev/mean of active slices (52/85) requires strong
  // seasonality in the arrival rate.
  ActivityModel m;
  EXPECT_GT(m.stddev_multiplier(), 0.3);
}

}  // namespace
}  // namespace patchwork::testbed
