#include "testbed/slice_model.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace patchwork::testbed {
namespace {

struct SliceModelTest : ::testing::Test {
  SliceModelTest() : rng(1234), model(rng, activity) {}
  util::Rng rng;
  ActivityModel activity;
  SliceActivityModel model;
};

TEST_F(SliceModelTest, SingleSiteFractionMatchesFig3) {
  // Fig. 3: 66.5% of all FABRIC slices use a single site.
  int single = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (model.draw_site_count() == 1) ++single;
  }
  EXPECT_NEAR(static_cast<double>(single) / n, 0.665, 0.02);
}

TEST_F(SliceModelTest, MultiSiteSlicesSpreadOverFewSites) {
  // Fig. 3: slices tend to use resources spread across *few* sites.
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t sites = model.draw_site_count();
    EXPECT_GE(sites, 1u);
    EXPECT_LE(sites, 9u);
  }
}

TEST_F(SliceModelTest, DurationQuartilesMatchFig4) {
  // Fig. 4: 75% of slices last <= 24 hours.
  int within_day = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (model.draw_duration() <= util::kDay) ++within_day;
  }
  EXPECT_NEAR(static_cast<double>(within_day) / n, 0.75, 0.02);
}

TEST_F(SliceModelTest, DurationsHaveHeavyTail) {
  bool saw_week_long = false;
  for (int i = 0; i < 50000 && !saw_week_long; ++i) {
    saw_week_long = model.draw_duration() > 7 * util::kDay;
  }
  EXPECT_TRUE(saw_week_long);
}

TEST_F(SliceModelTest, GeneratedSlicesAreTimeOrderedAndWithinSites) {
  const auto slices = model.generate(30 * util::kDay);
  ASSERT_FALSE(slices.empty());
  for (std::size_t i = 1; i < slices.size(); ++i) {
    EXPECT_LE(slices[i - 1].start, slices[i].start);
  }
  for (const SliceRecord& s : slices) {
    EXPECT_EQ(s.sites.size(), s.site_count);
    for (std::uint32_t site : s.sites) {
      EXPECT_LT(site, model.params().total_sites);
    }
    // Sites within one slice are distinct.
    for (std::size_t a = 0; a < s.sites.size(); ++a) {
      for (std::size_t b = a + 1; b < s.sites.size(); ++b) {
        EXPECT_NE(s.sites[a], s.sites[b]);
      }
    }
  }
}

TEST_F(SliceModelTest, SteadyStateActiveCountNearFig5Mean) {
  // Fig. 5: average 85 simultaneous slices. Sample a full year at daily
  // granularity; mean should land in the right neighbourhood.
  const auto slices = model.generate(365 * util::kDay);
  util::RunningStats stats;
  for (util::Nanos t = 0; t < 365 * util::kDay; t += util::kDay) {
    stats.add(static_cast<double>(
        SliceActivityModel::active_count(slices, t)));
  }
  EXPECT_NEAR(stats.mean(), 85.0, 25.0);
  // Fig. 5's variability: stddev 52; require strong dispersion at least.
  EXPECT_GT(stats.stddev(), 25.0);
  // "At most, we saw 272 simultaneous slices" — the peak should clearly
  // exceed the mean.
  EXPECT_GT(stats.max(), 1.8 * stats.mean());
}

TEST_F(SliceModelTest, WarmupPopulatesTimeZero) {
  const auto slices = model.generate(2 * util::kDay);
  EXPECT_GT(SliceActivityModel::active_count(slices, 0), 10u);
}

TEST_F(SliceModelTest, ActiveCountRespectsIntervals) {
  std::vector<SliceRecord> slices;
  SliceRecord r;
  r.start = 100;
  r.duration = 50;
  slices.push_back(r);
  EXPECT_EQ(SliceActivityModel::active_count(slices, 99), 0u);
  EXPECT_EQ(SliceActivityModel::active_count(slices, 100), 1u);
  EXPECT_EQ(SliceActivityModel::active_count(slices, 149), 1u);
  EXPECT_EQ(SliceActivityModel::active_count(slices, 150), 0u);
}

}  // namespace
}  // namespace patchwork::testbed
