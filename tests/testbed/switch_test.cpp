#include "testbed/switch.hpp"

#include <gtest/gtest.h>

namespace patchwork::testbed {
namespace {

ToRSwitch make_switch(std::size_t uplinks = 2, std::size_t downlinks = 6,
                      double rate = 100e9) {
  std::vector<SwitchPort> ports;
  for (std::size_t i = 0; i < uplinks; ++i) {
    ports.emplace_back(PortKind::kUplink, rate);
  }
  for (std::size_t i = 0; i < downlinks; ++i) {
    ports.emplace_back(PortKind::kDownlink, rate);
  }
  return ToRSwitch(std::move(ports));
}

TEST(ToRSwitch, PortsOfKind) {
  ToRSwitch sw = make_switch(2, 6);
  EXPECT_EQ(sw.count_of_kind(PortKind::kUplink), 2u);
  EXPECT_EQ(sw.count_of_kind(PortKind::kDownlink), 6u);
  EXPECT_EQ(sw.ports_of_kind(PortKind::kUplink).front().value, 0u);
}

TEST(ToRSwitch, AddMirrorBasics) {
  ToRSwitch sw = make_switch();
  EXPECT_TRUE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{5}}));
  ASSERT_EQ(sw.mirrors().size(), 1u);
  EXPECT_TRUE(sw.port_is_mirror_member(PortId{0}));
  EXPECT_TRUE(sw.port_is_mirror_member(PortId{5}));
  EXPECT_FALSE(sw.port_is_mirror_member(PortId{3}));
}

TEST(ToRSwitch, MirrorDestinationMustBeDownlink) {
  ToRSwitch sw = make_switch();
  // Port 1 is an uplink: invalid destination.
  EXPECT_FALSE(sw.add_mirror({PortId{3}, MirrorDirections::kBoth, PortId{1}}));
}

TEST(ToRSwitch, MirrorRejectsSelfAndBusyPorts) {
  ToRSwitch sw = make_switch();
  EXPECT_FALSE(sw.add_mirror({PortId{5}, MirrorDirections::kBoth, PortId{5}}));
  ASSERT_TRUE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{5}}));
  // Source already mirrored elsewhere.
  EXPECT_FALSE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{6}}));
  // Destination already in use.
  EXPECT_FALSE(sw.add_mirror({PortId{2}, MirrorDirections::kBoth, PortId{5}}));
}

TEST(ToRSwitch, RetargetMirrorIsPortCycling) {
  ToRSwitch sw = make_switch();
  ASSERT_TRUE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{5}}));
  EXPECT_TRUE(sw.retarget_mirror(PortId{0}, PortId{2}));
  auto session = sw.mirror_for_source(PortId{2});
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(session->destination, PortId{5});
  EXPECT_FALSE(sw.mirror_for_source(PortId{0}).has_value());
}

TEST(ToRSwitch, RetargetRejectsBusyNewSource) {
  ToRSwitch sw = make_switch(2, 8);
  ASSERT_TRUE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{5}}));
  ASSERT_TRUE(sw.add_mirror({PortId{1}, MirrorDirections::kBoth, PortId{6}}));
  EXPECT_FALSE(sw.retarget_mirror(PortId{0}, PortId{1}));
  EXPECT_FALSE(sw.retarget_mirror(PortId{0}, PortId{5}));  // Own dest.
}

TEST(ToRSwitch, RemoveMirror) {
  ToRSwitch sw = make_switch();
  ASSERT_TRUE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{5}}));
  EXPECT_TRUE(sw.remove_mirror(PortId{0}));
  EXPECT_FALSE(sw.remove_mirror(PortId{0}));
  EXPECT_TRUE(sw.mirrors().empty());
}

TEST(ToRSwitch, MirrorOfferedRespectDirections) {
  ToRSwitch sw = make_switch();
  sw.mutable_port(PortId{0}).set_rates(60e9, 50e9);
  MirrorSession both{PortId{0}, MirrorDirections::kBoth, PortId{5}};
  MirrorSession tx{PortId{0}, MirrorDirections::kTxOnly, PortId{5}};
  MirrorSession rx{PortId{0}, MirrorDirections::kRxOnly, PortId{5}};
  EXPECT_DOUBLE_EQ(sw.mirror_offered_bps(both), 110e9);
  EXPECT_DOUBLE_EQ(sw.mirror_offered_bps(tx), 60e9);
  EXPECT_DOUBLE_EQ(sw.mirror_offered_bps(rx), 50e9);
}

TEST(ToRSwitch, MirrorDeliveryDropsWhenOversubscribed) {
  // The paper's congestion mode: Mirrored(Tx) + Mirrored(Rx) > line rate
  // of the egress channel means silent frame drops at the switch.
  ToRSwitch sw = make_switch();
  sw.mutable_port(PortId{0}).set_rates(60e9, 50e9);  // 110G into a 100G port.
  ASSERT_TRUE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{5}}));
  const double f = sw.mirror_delivery_fraction(sw.mirrors().front());
  EXPECT_NEAR(f, 100.0 / 110.0, 1e-9);
}

TEST(ToRSwitch, MirrorDeliveryFullWhenUnderCapacity) {
  ToRSwitch sw = make_switch();
  sw.mutable_port(PortId{0}).set_rates(30e9, 20e9);
  ASSERT_TRUE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{5}}));
  EXPECT_DOUBLE_EQ(sw.mirror_delivery_fraction(sw.mirrors().front()), 1.0);
}

TEST(ToRSwitch, SetMirrorDirections) {
  ToRSwitch sw = make_switch();
  sw.mutable_port(PortId{0}).set_rates(60e9, 50e9);
  ASSERT_TRUE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{5}}));
  // 110G into 100G: dropping. Switching to Tx-only fits.
  EXPECT_LT(sw.mirror_delivery_fraction(sw.mirrors().front()), 1.0);
  EXPECT_TRUE(sw.set_mirror_directions(PortId{0}, MirrorDirections::kTxOnly));
  EXPECT_DOUBLE_EQ(sw.mirror_delivery_fraction(sw.mirrors().front()), 1.0);
  EXPECT_EQ(sw.mirror_for_source(PortId{0})->directions,
            MirrorDirections::kTxOnly);
  EXPECT_FALSE(sw.set_mirror_directions(PortId{3}, MirrorDirections::kBoth));
}

TEST(ToRSwitch, AdvanceChargesMirrorEgressAndDrops) {
  ToRSwitch sw = make_switch();
  sw.mutable_port(PortId{0}).set_rates(60e9, 50e9);
  sw.mutable_port(PortId{0}).set_mean_frame_size(1000.0);
  ASSERT_TRUE(sw.add_mirror({PortId{0}, MirrorDirections::kBoth, PortId{5}}));
  sw.advance(util::kSecond);
  // Egress carried its line rate worth of bytes.
  EXPECT_NEAR(static_cast<double>(sw.port(PortId{5}).counters().tx_bytes),
              100e9 / 8, 1e7);
  // The 10G excess shows up as mirror drops.
  EXPECT_NEAR(static_cast<double>(sw.port(PortId{5}).counters().mirror_drops),
              (10e9 / 8) / 1000.0, 1e4);
}

}  // namespace
}  // namespace patchwork::testbed
