#include "host/page_cache.hpp"

#include <gtest/gtest.h>

namespace patchwork::host {
namespace {

PageCacheConfig small_cache() {
  PageCacheConfig c;
  c.free_cache_bytes = 1ull << 30;  // 1 GB for quick tests.
  c.dirty_background_ratio = 0.10;
  c.dirty_ratio = 0.20;
  c.storage_write_bytes_per_sec = 100e6;  // 100 MB/s flush.
  c.jitter_sigma = 0.0;                    // Deterministic latencies.
  c.outlier_probability = 0.0;
  return c;
}

struct PageCacheTest : ::testing::Test {
  PageCacheTest() : rng(1) {}
  util::Rng rng;
};

TEST_F(PageCacheTest, ThresholdBytes) {
  PageCache cache(small_cache(), rng);
  EXPECT_EQ(cache.background_threshold_bytes(), (1ull << 30) / 10);
  EXPECT_EQ(cache.dirty_threshold_bytes(), (1ull << 30) / 5);
  // The midpoint — where the paper found the kernel throttles the writer.
  EXPECT_EQ(cache.midpoint_threshold_bytes(),
            (cache.background_threshold_bytes() +
             cache.dirty_threshold_bytes()) /
                2);
}

TEST_F(PageCacheTest, FastRegimeLatencyIsBaseCost) {
  PageCache cache(small_cache(), rng);
  const std::uint64_t bytes = 27648;  // A 128-frame, 200 B-truncation batch.
  const util::Nanos lat = cache.write(bytes);
  // syscall overhead + memcpy at 10 B/ns.
  EXPECT_NEAR(static_cast<double>(lat), 2000.0 + bytes / 10.0, 500.0);
  EXPECT_EQ(cache.regime(), WritebackRegime::kFast);
}

TEST_F(PageCacheTest, RegimeProgression) {
  PageCacheConfig cfg = small_cache();
  cfg.storage_write_bytes_per_sec = 1.0;  // Effectively no flushing.
  PageCache cache(cfg, rng);
  const std::uint64_t chunk = 8ull << 20;  // 8 MB writes.
  // Fill to just below background (102.4 MB).
  while (cache.dirty_bytes() + chunk < cache.background_threshold_bytes()) {
    cache.write(chunk);
  }
  EXPECT_EQ(cache.regime(), WritebackRegime::kFast);
  // Cross background.
  while (cache.dirty_bytes() + chunk < cache.midpoint_threshold_bytes()) {
    cache.write(chunk);
  }
  EXPECT_EQ(cache.regime(), WritebackRegime::kBackground);
  while (cache.dirty_bytes() + chunk < cache.dirty_threshold_bytes()) {
    cache.write(chunk);
  }
  EXPECT_EQ(cache.regime(), WritebackRegime::kThrottled);
  cache.write(chunk);
  cache.write(chunk);
  EXPECT_EQ(cache.regime(), WritebackRegime::kBlocked);
}

TEST_F(PageCacheTest, ThrottlingStartsAtMidpointNotDirtyRatio) {
  // The paper's Appendix B discovery: "at the midpoint of
  // vm.dirty_background_ratio and vm.dirty_ratio, the writing process is
  // throttled ... Surprisingly, this increase happened before exceeding
  // vm.dirty_ratio."
  PageCacheConfig cfg = small_cache();
  cfg.storage_write_bytes_per_sec = 1.0;
  PageCache cache(cfg, rng);
  const std::uint64_t chunk = 1ull << 20;
  // Latency just below midpoint.
  while (cache.dirty_bytes() + 2 * chunk <
         cache.midpoint_threshold_bytes()) {
    cache.write(chunk);
  }
  const util::Nanos before_midpoint = cache.write(chunk);
  // Push past the midpoint but stay below dirty_ratio.
  while (cache.dirty_bytes() + 2 * chunk < cache.dirty_threshold_bytes()) {
    cache.write(chunk);
  }
  ASSERT_EQ(cache.regime(), WritebackRegime::kThrottled);
  const util::Nanos after_midpoint = cache.write(chunk);
  EXPECT_GT(after_midpoint, 10 * before_midpoint);
}

TEST_F(PageCacheTest, AdvanceFlushesOnlyAboveBackground) {
  PageCacheConfig cfg = small_cache();
  PageCache cache(cfg, rng);
  cache.write(50ull << 20);  // Below background: no writeback triggered.
  const std::uint64_t dirty = cache.dirty_bytes();
  cache.advance(util::kSecond);
  EXPECT_EQ(cache.dirty_bytes(), dirty);
  // Go above background; now advance() drains at storage bandwidth.
  while (cache.regime() == WritebackRegime::kFast) cache.write(8ull << 20);
  const std::uint64_t dirty2 = cache.dirty_bytes();
  cache.advance(util::kSecond);
  EXPECT_LT(cache.dirty_bytes(), dirty2);
  // But never below the background threshold.
  cache.advance(3600 * util::kSecond);
  EXPECT_EQ(cache.dirty_bytes(), cache.background_threshold_bytes());
}

TEST_F(PageCacheTest, BlockedWritesWaitForFlush) {
  PageCacheConfig cfg = small_cache();
  // A device too slow for the bounded throttle pauses to contain the
  // writer: dirty pages outrun writeback and hit dirty_ratio. (With fast
  // storage, pacing keeps dirty below the ratio — by design.)
  cfg.storage_write_bytes_per_sec = 1e6;
  PageCache cache(cfg, rng);
  // Jam the cache past dirty_ratio.
  for (int i = 0; i < 1000 && cache.regime() != WritebackRegime::kBlocked;
       ++i) {
    cache.write(16ull << 20);
  }
  ASSERT_EQ(cache.regime(), WritebackRegime::kBlocked);
  const util::Nanos lat = cache.write(1ull << 20);
  // Must reflect storage-speed flushing of the excess: >> 1 ms.
  EXPECT_GT(lat, static_cast<util::Nanos>(1e6));
}

TEST_F(PageCacheTest, LatencyHistogramRecordsEveryWrite) {
  PageCache cache(small_cache(), rng);
  for (int i = 0; i < 100; ++i) cache.write(1000);
  EXPECT_EQ(cache.latency_histogram().total(), 100u);
  EXPECT_EQ(cache.total_bytes_written(), 100'000u);
}

TEST_F(PageCacheTest, JitterProducesLatencySpread) {
  PageCacheConfig cfg = small_cache();
  cfg.jitter_sigma = 0.5;
  PageCache cache(cfg, rng);
  util::Nanos lo = ~0ull, hi = 0;
  for (int i = 0; i < 500; ++i) {
    const util::Nanos lat = cache.write(1000);
    lo = std::min(lo, lat);
    hi = std::max(hi, lat);
  }
  EXPECT_GT(hi, 2 * lo);
}

}  // namespace
}  // namespace patchwork::host
