#include "host/host_system.hpp"

#include <gtest/gtest.h>

namespace patchwork::host {
namespace {

TEST(HostSpec, DpdkCapacityScalesWithCores) {
  HostSpec spec;
  const double one = spec.dpdk_capacity_pps(1, 200);
  const double five = spec.dpdk_capacity_pps(5, 200);
  EXPECT_GT(five, 3.5 * one);  // Sub-linear but strong scaling.
  EXPECT_LT(five, 5.0 * one);
}

TEST(HostSpec, SmallerTruncationIsCheaper) {
  // Section 8.1.4 / Tables 1-2: 64 B truncation "requires fewer cores to
  // achieve the same throughput performance as the 200 bytes truncation".
  HostSpec spec;
  EXPECT_GT(spec.dpdk_capacity_pps(5, 64), spec.dpdk_capacity_pps(5, 200));
}

TEST(HostSpec, Table2Row1ThreeCoresSustain100G1514) {
  // Table 2: 1514 B frames at 100 Gbps with 64 B truncation need 3 cores.
  HostSpec spec;
  const double offered_pps = 100e9 / (8.0 * 1514.0);
  EXPECT_GT(spec.dpdk_capacity_pps(3, 64), offered_pps);
  EXPECT_LT(spec.dpdk_capacity_pps(2, 64), offered_pps);
}

TEST(HostSpec, Table1Row1FiveCoresSustain100G1514) {
  // Table 1: 200 B truncation needs 5 cores for the same stream.
  HostSpec spec;
  const double offered_pps = 100e9 / (8.0 * 1514.0);
  EXPECT_GT(spec.dpdk_capacity_pps(5, 200), offered_pps);
  EXPECT_LT(spec.dpdk_capacity_pps(4, 200), offered_pps);
}

TEST(HostSpec, FpgaOffloadRemovesWireByteCost) {
  HostSpec spec;
  const double with_fpga = spec.dpdk_capacity_pps(4, 200, 9000, true);
  const double without = spec.dpdk_capacity_pps(4, 200, 9000, false);
  EXPECT_GT(with_fpga, without);
  // For tiny frames the difference nearly vanishes.
  const double small_with = spec.dpdk_capacity_pps(4, 64, 64, true);
  const double small_without = spec.dpdk_capacity_pps(4, 64, 64, false);
  EXPECT_NEAR(small_with / small_without, 1.0, 0.05);
}

TEST(HostSpec, ZeroCoresNoCapacity) {
  HostSpec spec;
  EXPECT_DOUBLE_EQ(spec.dpdk_capacity_pps(0, 200), 0.0);
}

TEST(HostSpec, KernelCapacityMatchesTcpdumpCeiling) {
  // Section 8.1.2: tcpdump captured without loss until ~8.5 Gbps of
  // 1500 B frames (64 B snaplen).
  HostSpec spec;
  const double pps = spec.kernel_capacity_pps(1500, 64);
  const double gbps = pps * 1500.0 * 8.0 / 1e9;
  EXPECT_GT(gbps, 7.5);
  EXPECT_LT(gbps, 9.5);
}

TEST(HostSpec, KernelPathPaysForWireBytesNotJustSnaplen) {
  HostSpec spec;
  // Same snaplen, bigger wire frames -> fewer pps.
  EXPECT_GT(spec.kernel_capacity_pps(200, 64),
            spec.kernel_capacity_pps(1500, 64));
}

TEST(HostSpec, KernelPathFarSlowerThanDpdk) {
  HostSpec spec;
  EXPECT_GT(spec.dpdk_capacity_pps(2, 64), spec.kernel_capacity_pps(64, 64));
}

}  // namespace
}  // namespace patchwork::host
