// Pins the counter-based engine: golden vectors for the raw block
// function, O(1) random access equal to sequential drawing, split
// equivalence through util::Rng, and a statistical smoke test so a wrong
// multiplier or Weyl constant cannot pass silently.
#include "util/philox.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace patchwork::util {
namespace {

// Known-answer vectors from the Random123 reference implementation
// (philox4x32 with 10 rounds).
TEST(Philox, GoldenVectorAllZero) {
  const std::array<std::uint32_t, 4> out =
      philox4x32_10({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, GoldenVectorAllOnes) {
  const std::array<std::uint32_t, 4> out = philox4x32_10(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, GoldenVectorPiDigits) {
  const std::array<std::uint32_t, 4> out = philox4x32_10(
      {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
      {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(out[0], 0xd16cfe09u);
  EXPECT_EQ(out[1], 0x94fdccebu);
  EXPECT_EQ(out[2], 0x5001e420u);
  EXPECT_EQ(out[3], 0x24126ea1u);
}

TEST(PhiloxEngine, RandomAccessEqualsSequentialDraws) {
  PhiloxEngine sequential(0x1234abcd5678ef90ull);
  const PhiloxEngine indexed(0x1234abcd5678ef90ull);
  for (std::uint64_t j = 0; j < 1000; ++j) {
    ASSERT_EQ(sequential(), indexed.at(j)) << "draw " << j;
  }
}

TEST(PhiloxEngine, AtDoesNotPerturbSequentialPosition) {
  PhiloxEngine a(7), b(7);
  (void)a.at(123456);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(PhiloxEngine, DistinctSeedsDiverge) {
  PhiloxEngine a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngAt, MatchesSequentialBits) {
  // Rng::at(j) is the value of the j-th bits() call, regardless of how far
  // the sequential position has advanced.
  Rng rng(99);
  const Rng reference(99);
  std::vector<std::uint64_t> drawn;
  for (std::uint64_t j = 0; j < 64; ++j) drawn.push_back(rng.bits());
  for (std::uint64_t j = 0; j < 64; ++j) {
    EXPECT_EQ(reference.at(j), drawn[j]) << "draw " << j;
    EXPECT_EQ(rng.at(j), drawn[j]) << "draw " << j << " (advanced rng)";
  }
}

TEST(RngBlock, CounterAccessMatchesStreamDraws) {
  Rng stream(0xfeedface);
  const RngBlock block(stream);
  for (std::uint64_t j = 0; j < 128; ++j) {
    ASSERT_EQ(stream.bits(), block.at(j)) << "draw " << j;
  }
}

TEST(RngBlock, TwoLevelSplitEquivalenceThroughBlocks) {
  // The counter view composes with the split algebra: the block over
  // root.split(a, b) indexes the same draw table as the block over
  // root.split(a).split(b).
  const Rng root(2024);
  for (std::uint64_t a : {0ull, 3ull, 500ull}) {
    for (std::uint64_t b : {0ull, 1ull, 17ull}) {
      const RngBlock direct(root.split(a, b));
      const RngBlock chained(root.split(a).split(b));
      for (std::uint64_t j : {0ull, 1ull, 63ull, 100000ull}) {
        ASSERT_EQ(direct.at(j), chained.at(j))
            << "a=" << a << " b=" << b << " j=" << j;
      }
    }
  }
}

TEST(RngBlock, BoundedAtStaysInRangeAndCoversEndpoints) {
  const RngBlock block(Rng(31337));
  bool saw_lo = false, saw_hi = false;
  for (std::uint64_t j = 0; j < 4000; ++j) {
    const std::uint64_t v = block.bounded_at(j, 10, 17);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 17u);
    saw_lo |= v == 10;
    saw_hi |= v == 17;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  // Degenerate and full ranges.
  EXPECT_EQ(block.bounded_at(5, 42, 42), 42u);
  EXPECT_EQ(block.bounded_at(5, 0, ~std::uint64_t{0}), block.at(5));
}

TEST(RngBlock, ChanceAtEdgeCasesAndRate) {
  const RngBlock block(Rng(4242));
  EXPECT_FALSE(block.chance_at(0, 0.0));
  EXPECT_TRUE(block.chance_at(0, 1.0));
  int hits = 0;
  const int n = 20000;
  for (int j = 0; j < n; ++j) {
    if (block.chance_at(static_cast<std::uint64_t>(j), 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(PhiloxStatistical, BitBalance) {
  // Each of the 64 output bit positions should be set ~half the time.
  PhiloxEngine engine(0x5eed);
  const int n = 20000;
  std::array<int, 64> ones{};
  for (int i = 0; i < n; ++i) {
    std::uint64_t v = engine();
    for (int b = 0; b < 64; ++b) {
      ones[static_cast<std::size_t>(b)] += static_cast<int>(v & 1);
      v >>= 1;
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[static_cast<std::size_t>(b)]) / n,
                0.5, 0.02)
        << "bit " << b;
  }
}

TEST(PhiloxStatistical, ChiSquareUniformBuckets) {
  // 256 buckets over the top byte of uniform_u64 draws. With 25600 draws
  // (expected 100/bucket) a healthy generator lands near df=255; the
  // threshold is ~5 sigma, far beyond normal fluctuation but instantly
  // tripped by a broken constant.
  Rng rng(777);
  const int kBuckets = 256;
  const int n = 25600;
  std::array<int, 256> counts{};
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(rng.uniform_u64(0, 0xffffffffffffffffull) >>
                                    56)]++;
  }
  const double expected = static_cast<double>(n) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // df = 255: mean 255, sigma ~22.6.
  EXPECT_LT(chi2, 255.0 + 5.0 * 22.6);
  EXPECT_GT(chi2, 255.0 - 5.0 * 22.6);
}

}  // namespace
}  // namespace patchwork::util
