// Pins the vectorized Philox kernels: every compiled-and-supported ISA
// tier must reproduce PhiloxEngine's draw table bit-for-bit (including the
// Random123 golden vectors, odd counter offsets, and the 2^32 block-counter
// carry), and the runtime dispatch knob must honor explicit overrides and
// the PATCHWORK_SIMD environment variable.
#include "util/philox_simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "util/philox.hpp"

namespace patchwork::util {
namespace {

/// Restores default dispatch resolution when a test that forces tiers (or
/// pokes PATCHWORK_SIMD) finishes, so test order cannot leak a narrow tier
/// into unrelated suites.
struct SimdTierGuard {
  ~SimdTierGuard() {
    unsetenv("PATCHWORK_SIMD");
    reset_simd_tier();
  }
};

std::vector<SimdTier> supported_tiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kSse4, SimdTier::kAvx2}) {
    if (simd_tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

TEST(PhiloxSimd, TierNamesRoundTrip) {
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kSse4, SimdTier::kAvx2}) {
    const auto parsed = parse_simd_tier(to_string(t));
    ASSERT_TRUE(parsed.has_value()) << to_string(t);
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_EQ(parse_simd_tier("sse4.2"), SimdTier::kSse4);
  EXPECT_EQ(parse_simd_tier("sse42"), SimdTier::kSse4);
  EXPECT_FALSE(parse_simd_tier("avx512").has_value());
  EXPECT_FALSE(parse_simd_tier("").has_value());
  EXPECT_FALSE(parse_simd_tier("AVX2 ").has_value());
}

TEST(PhiloxSimd, ScalarAlwaysSupportedAndBestTierIsSupported) {
  EXPECT_TRUE(simd_tier_supported(SimdTier::kScalar));
  EXPECT_TRUE(simd_tier_supported(best_simd_tier()));
}

TEST(PhiloxSimd, SetTierOverridesDispatch) {
  SimdTierGuard guard;
  for (SimdTier t : supported_tiers()) {
    EXPECT_TRUE(set_simd_tier(t)) << to_string(t);
    EXPECT_EQ(simd_tier(), t);
  }
  // An unsupported tier is refused and leaves the active tier alone.
  for (SimdTier t : {SimdTier::kSse4, SimdTier::kAvx2}) {
    if (simd_tier_supported(t)) continue;
    ASSERT_TRUE(set_simd_tier(SimdTier::kScalar));
    EXPECT_FALSE(set_simd_tier(t));
    EXPECT_EQ(simd_tier(), SimdTier::kScalar);
  }
  reset_simd_tier();
  EXPECT_EQ(simd_tier(), best_simd_tier());
}

TEST(PhiloxSimd, EnvKnobSelectsTier) {
  SimdTierGuard guard;
  setenv("PATCHWORK_SIMD", "scalar", 1);
  reset_simd_tier();  // Re-resolve: env wins over the CPU probe.
  EXPECT_EQ(simd_tier(), SimdTier::kScalar);
  // Garbage env values fall back to the best supported tier.
  setenv("PATCHWORK_SIMD", "quantum", 1);
  reset_simd_tier();
  EXPECT_EQ(simd_tier(), best_simd_tier());
}

TEST(PhiloxSimd, BulkReproducesGoldenVectorsOnEveryTier) {
  // The all-zero Random123 golden block {0x6627e8d5, 0xe169c58d,
  // 0xbc57ac4c, 0x9b00dbd8} assembles into draws 0 and 1 of key 0.
  SimdTierGuard guard;
  for (SimdTier t : supported_tiers()) {
    ASSERT_TRUE(set_simd_tier(t));
    std::uint64_t out[2] = {0, 0};
    philox_bulk(/*key=*/0, /*j0=*/0, /*n=*/2, out);
    EXPECT_EQ(out[0], 0xe169c58d6627e8d5ull) << to_string(t);
    EXPECT_EQ(out[1], 0x9b00dbd8bc57ac4cull) << to_string(t);
  }
}

TEST(PhiloxSimd, BulkMatchesEngineOnEveryTier) {
  SimdTierGuard guard;
  const std::uint64_t keys[] = {0, 0x1234abcd5678ef90ull, ~std::uint64_t{0}};
  // Offsets probe odd starts and the lo32 -> hi32 block-counter carry
  // (blocks near 2^32, i.e. draws near 2^33).
  const std::uint64_t offsets[] = {0, 1, 5, (1ull << 33) - 7, (1ull << 33) - 1};
  const std::size_t sizes[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 33, 1000};
  for (SimdTier t : supported_tiers()) {
    ASSERT_TRUE(set_simd_tier(t));
    for (std::uint64_t key : keys) {
      const PhiloxEngine engine(key);
      for (std::uint64_t j0 : offsets) {
        for (std::size_t n : sizes) {
          std::vector<std::uint64_t> out(n, 0xdeadbeefdeadbeefull);
          philox_bulk(key, j0, n, out.data());
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(out[i], engine.at(j0 + i))
                << to_string(t) << " key=" << key << " j=" << (j0 + i);
          }
        }
      }
    }
  }
}

TEST(PhiloxSimd, TiersAgreeWithEachOther) {
  // Belt and braces on top of the engine comparison: all supported tiers
  // fill an identical buffer for an identical request.
  SimdTierGuard guard;
  const std::vector<SimdTier> tiers = supported_tiers();
  constexpr std::size_t kN = 4096;
  std::vector<std::vector<std::uint64_t>> results;
  for (SimdTier t : tiers) {
    ASSERT_TRUE(set_simd_tier(t));
    std::vector<std::uint64_t> out(kN);
    philox_bulk(0xfeedfacecafef00dull, /*j0=*/3, kN, out.data());
    results.push_back(std::move(out));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i])
        << to_string(tiers[0]) << " vs " << to_string(tiers[i]);
  }
}

}  // namespace
}  // namespace patchwork::util
