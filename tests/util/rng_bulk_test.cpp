// Bulk draw contracts: every RngBlock fill must be draw-for-draw identical
// to its scalar *_at counterpart on every supported ISA tier — including
// the bounded-fill edge ranges (degenerate, full 2^64 span, just past a
// power of two) where a reduction bug would first show.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/philox_simd.hpp"
#include "util/rng.hpp"

namespace patchwork::util {
namespace {

struct SimdTierGuard {
  ~SimdTierGuard() { reset_simd_tier(); }
};

std::vector<SimdTier> supported_tiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kSse4, SimdTier::kAvx2}) {
    if (simd_tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

TEST(RngBulk, RawFillMatchesAt) {
  SimdTierGuard guard;
  const RngBlock block(Rng(0xfeedface));
  for (SimdTier t : supported_tiers()) {
    ASSERT_TRUE(set_simd_tier(t));
    for (std::uint64_t j0 : {0ull, 1ull, 97ull}) {
      std::vector<std::uint64_t> out(257);
      block.raw_fill(j0, out);
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], block.at(j0 + i))
            << to_string(t) << " j=" << (j0 + i);
      }
    }
  }
}

TEST(RngBulk, Uniform01FillMatchesScalar) {
  SimdTierGuard guard;
  const RngBlock block(Rng(31337));
  for (SimdTier t : supported_tiers()) {
    ASSERT_TRUE(set_simd_tier(t));
    // Longer than the internal chunk so the chunking seam is covered.
    std::vector<double> out(3000);
    block.uniform01_fill(5, out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], block.uniform01_at(5 + i))
          << to_string(t) << " i=" << i;
    }
  }
}

TEST(RngBulk, BoundedFillMatchesScalarOnEdgeRanges) {
  SimdTierGuard guard;
  const RngBlock block(Rng(0x600dcafe));
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  struct Range {
    std::uint64_t lo, hi;
  };
  const Range ranges[] = {
      {42, 42},                     // Degenerate: lo == hi.
      {0, kMax},                    // Full span: range wraps to 0.
      {1, kMax},                    // One short of the full span.
      {0, 1ull << 20},              // Range just past a power of two.
      {7, 6 + (1ull << 20)},        // Same width, shifted lo.
      {0, (1ull << 20) - 1},        // Exact power of two.
      {kMax - 4, kMax},             // Top of the domain.
      {0, 1},                       // Coin flip.
  };
  for (SimdTier t : supported_tiers()) {
    ASSERT_TRUE(set_simd_tier(t));
    for (const Range& r : ranges) {
      std::vector<std::uint64_t> out(513);
      block.bounded_fill(11, r.lo, r.hi, out);
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_GE(out[i], r.lo) << to_string(t);
        ASSERT_LE(out[i], r.hi) << to_string(t);
        ASSERT_EQ(out[i], block.bounded_at(11 + i, r.lo, r.hi))
            << to_string(t) << " [" << r.lo << "," << r.hi << "] i=" << i;
      }
    }
  }
}

TEST(RngBulk, BoundedFillNeverDivergesFromScalarProperty) {
  // Property sweep over derived streams and pseudo-random ranges: the bulk
  // path is rejection-free, so it can never consume a different number of
  // draws than the scalar path — outputs must match index-for-index.
  SimdTierGuard guard;
  const Rng root(2024);
  for (SimdTier t : supported_tiers()) {
    ASSERT_TRUE(set_simd_tier(t));
    for (std::uint64_t stream = 0; stream < 8; ++stream) {
      const RngBlock block(root.split(stream));
      // Derive the range under test from the stream itself.
      const std::uint64_t a = block.at(1000000 + stream);
      const std::uint64_t b = block.at(2000000 + stream);
      const std::uint64_t lo = std::min(a, b);
      const std::uint64_t hi = std::max(a, b);
      std::vector<std::uint64_t> out(64);
      block.bounded_fill(stream * 17, lo, hi, out);
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], block.bounded_at(stream * 17 + i, lo, hi))
            << to_string(t) << " stream=" << stream << " i=" << i;
      }
    }
  }
}

TEST(RngBulk, ChanceFillMatchesScalarAndHandlesEdges) {
  SimdTierGuard guard;
  const RngBlock block(Rng(4242));
  for (SimdTier t : supported_tiers()) {
    ASSERT_TRUE(set_simd_tier(t));
    for (double p : {0.0, -1.0, 1.0, 2.0, 0.3, 0.999}) {
      std::vector<std::uint8_t> out(1500);
      block.chance_fill(9, p, out);
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i] != 0, block.chance_at(9 + i, p))
            << to_string(t) << " p=" << p << " i=" << i;
        ASSERT_LE(out[i], 1) << "fills emit strict 0/1";
      }
    }
  }
}

}  // namespace
}  // namespace patchwork::util
