#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace patchwork::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bits(), b.bits());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.bits() == b.bits()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng parent(7);
  Rng child = parent.fork();
  // Child stream must not simply mirror the parent.
  Rng parent2(7);
  Rng child2 = parent2.fork();
  EXPECT_EQ(child.bits(), child2.bits());  // Same lineage, same stream.
}

TEST(Rng, TwoLevelSplitMatchesChainedSplit) {
  const Rng root(99);
  for (std::uint64_t site : {0ull, 1ull, 7ull, 1000ull}) {
    for (std::uint64_t k : {0ull, 1ull, 63ull}) {
      Rng chained = root.split(site).split(k);
      Rng direct = root.split(site, k);
      for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(chained.bits(), direct.bits())
            << "site " << site << " k " << k;
      }
    }
  }
}

TEST(Rng, TwoLevelSplitStreamsAreDistinct) {
  // Nearby (stream, substream) addresses must not collide or alias:
  // (0,1) != (1,0), and substreams of one site differ from each other.
  const Rng root(4242);
  Rng a = root.split(0, 1);
  Rng b = root.split(1, 0);
  Rng c = root.split(0, 2);
  int ab = 0, ac = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t xa = a.bits();
    if (xa == b.bits()) ++ab;
    if (xa == c.bits()) ++ac;
  }
  EXPECT_LT(ab, 2);
  EXPECT_LT(ac, 2);
}

TEST(Rng, SplitConsumesNothingFromParent) {
  Rng a(31), b(31);
  (void)a.split(5, 9);  // Must not perturb a's own sequence.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64CoversEndpoints) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000 && !(saw_lo && saw_hi); ++i) {
    const std::uint64_t v = rng.uniform_u64(0, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ParetoStaysInBounds) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.pareto(10.0, 1000.0, 1.2);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 1000.0 + 1e-6);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng(23);
  // With alpha < 1 a nontrivial share of draws should land far above the
  // minimum.
  int above = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.pareto(1.0, 1e6, 0.6) > 1000.0) ++above;
  }
  EXPECT_GT(above, n / 100);
  // But the median stays near the minimum.
  std::vector<double> v;
  for (int i = 0; i < 1001; ++i) v.push_back(rng.pareto(1.0, 1e6, 0.6));
  std::nth_element(v.begin(), v.begin() + 500, v.end());
  EXPECT_LT(v[500], 20.0);
}

TEST(Rng, PoissonMean) {
  Rng rng(29);
  std::uint64_t sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(6.5);
  EXPECT_NEAR(static_cast<double>(sum) / n, 6.5, 0.15);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    counts[rng.weighted_index(weights)]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedTableMatchesLinearScanExactly) {
  // The prepared-table overload must pick bit-identical indices to the
  // one-shot scan: same engine state, same weights, same index, for every
  // draw — including zero-weight entries and ties in the prefix sums.
  const std::vector<double> weights = {0.25, 0.0, 3.0, 1e-9, 0.5,
                                       7.25, 0.0, 0.125};
  const WeightedTable table(weights);
  Rng linear(321), prepared(321);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_EQ(linear.weighted_index(weights),
              prepared.weighted_index(table))
        << "draw " << i;
  }
}

TEST(Rng, WeightedTableRespectsWeights) {
  Rng rng(53);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  const WeightedTable table(weights);
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(table)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace patchwork::util
