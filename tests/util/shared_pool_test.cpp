// The shared process-lifetime pool's contract: one pool per process, grown
// on demand and never torn down between parallel regions, safe to drive
// from several threads at once (the caller always participates, so no
// combination of concurrent parallel_for calls can deadlock), and worker
// threads keep stable identities — parallel_for must NOT construct a pool
// per call.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace patchwork::util {
namespace {

TEST(SharedPool, IsOneProcessWideInstance) {
  ThreadPool& a = shared_pool();
  ThreadPool& b = shared_pool();
  EXPECT_EQ(&a, &b);
}

TEST(SharedPool, GrowsOnDemandAndNeverShrinks) {
  ThreadPool& pool = shared_pool();
  pool.ensure_size(2);
  EXPECT_GE(pool.size(), 2u);
  const std::size_t grown = pool.size();
  pool.ensure_size(1);  // Smaller request: no-op.
  EXPECT_EQ(pool.size(), grown);
  pool.ensure_size(grown + 1);
  EXPECT_EQ(pool.size(), grown + 1);
}

TEST(SharedPool, WorkerThreadsAreStableAcrossParallelForCalls) {
  // Run many parallel regions and record which OS threads executed loop
  // bodies on pool workers. If parallel_for spun up a fresh pool per call,
  // every round would mint new thread ids and the union would keep
  // growing; with the shared pool it is bounded by the pool size.
  std::mutex mu;
  std::set<std::thread::id> worker_ids;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    parallel_for(
        64,
        [&](std::size_t) {
          if (ThreadPool::on_worker_thread()) {
            std::lock_guard<std::mutex> lock(mu);
            worker_ids.insert(std::this_thread::get_id());
          }
        },
        4);
  }
  EXPECT_LE(worker_ids.size(), shared_pool().size());
}

TEST(SharedPool, ConcurrentParallelForFromManyThreads) {
  // Several client threads each drive their own parallel_for through the
  // one shared pool. Caller participation guarantees forward progress even
  // when every pool worker is busy serving someone else.
  constexpr int kClients = 4;
  constexpr std::size_t kItems = 2000;
  std::vector<std::vector<std::atomic<int>>> hits(kClients);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kItems);
    for (auto& x : h) x.store(0);
  }
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      parallel_for(
          kItems, [&](std::size_t i) { ++hits[c][i]; }, 4);
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[c][i].load(), 1) << "client " << c << " index " << i;
    }
  }
}

TEST(SharedPool, NestedCallsFromClientThreadsDegradeToSerial) {
  // Depth guard: a parallel_for issued from inside a parallel region runs
  // serially on the issuing thread instead of re-entering the pool.
  std::atomic<int> total{0};
  parallel_for(
      4,
      [&](std::size_t) {
        EXPECT_GT(parallel_region_depth(), 0u);
        parallel_for(16, [&](std::size_t) { ++total; }, 4);
      },
      2);
  EXPECT_EQ(total.load(), 64);
  EXPECT_EQ(parallel_region_depth(), 0u);
}

TEST(SharedPool, ReusableAfterIdlePeriod) {
  std::atomic<int> first{0};
  parallel_for(128, [&](std::size_t) { ++first; }, 4);
  EXPECT_EQ(first.load(), 128);
  // Workers idle on the condition variable; a later region must reuse
  // them without hiccups.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::atomic<int> second{0};
  parallel_for(128, [&](std::size_t) { ++second; }, 4);
  EXPECT_EQ(second.load(), 128);
}

TEST(SharedPool, SubmitAndFuturesFromMultipleThreads) {
  ThreadPool& pool = shared_pool();
  pool.ensure_size(2);
  std::atomic<int> ran{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      std::vector<std::future<void>> futures;
      futures.reserve(50);
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.submit([&ran] { ++ran; }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ran.load(), 150);
}

}  // namespace
}  // namespace patchwork::util
