#include "util/file_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace patchwork::util {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FileIo, AtomicWriteCreatesAndReplaces) {
  const std::string path = temp_path("file_io_atomic.bin");
  ASSERT_TRUE(write_file_atomic(path, std::string_view("first")));
  auto bytes = read_file_bytes(path, 1 << 20);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), "first");

  ASSERT_TRUE(write_file_atomic(path, std::string_view("second, longer")));
  bytes = read_file_bytes(path, 1 << 20);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), "second, longer");
  std::remove(path.c_str());
}

TEST(FileIo, BoundedReadRejectsOversizedFile) {
  const std::string path = temp_path("file_io_bounded.bin");
  ASSERT_TRUE(write_file_atomic(path, std::string_view("0123456789")));
  EXPECT_TRUE(read_file_bytes(path, 10).has_value());
  EXPECT_FALSE(read_file_bytes(path, 9).has_value())
      << "a file over the bound must be rejected, not truncated";
  std::remove(path.c_str());
}

TEST(FileIo, ReadMissingFileFails) {
  EXPECT_FALSE(read_file_bytes(temp_path("no_such_file"), 1024).has_value());
  EXPECT_FALSE(file_size_bytes(temp_path("no_such_file")).has_value());
}

TEST(FileIo, AppendAndTruncate) {
  const std::string path = temp_path("file_io_append.bin");
  std::remove(path.c_str());
  const std::vector<std::uint8_t> a{'a', 'b', 'c'};
  const std::vector<std::uint8_t> b{'d', 'e'};
  ASSERT_TRUE(append_file(path, a));
  ASSERT_TRUE(append_file(path, b));
  EXPECT_EQ(file_size_bytes(path).value_or(0), 5u);

  ASSERT_TRUE(truncate_file(path, 3));
  auto bytes = read_file_bytes(path, 1024);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), "abc");
  // Growing via truncate_file is refused: recovery only ever shrinks.
  EXPECT_FALSE(truncate_file(path, 10));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace patchwork::util
