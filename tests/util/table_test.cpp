#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace patchwork::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"Frame Size (B)", "Rate (Gbps)"});
  t.add_row({"1514", "100"});
  t.add_row({"128", "15"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("Frame Size (B) | Rate (Gbps)"), std::string::npos);
  EXPECT_NE(out.find("1514"), std::string::npos);
}

TEST(TextTable, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(FmtHelpers, FormatsDoubles) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(FmtHelpers, FormatsPercent) {
  EXPECT_EQ(fmt_percent(0.747, 1), "74.7%");
  EXPECT_EQ(fmt_percent(0.0193, 2), "1.93%");
}

}  // namespace
}  // namespace patchwork::util
