#include "util/compress.hpp"

#include <gtest/gtest.h>

#include "pcap/pcap.hpp"
#include "traffic/flowgen.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"

namespace patchwork::util {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Compress, EmptyInput) {
  const auto compressed = compress({});
  const auto restored = decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->empty());
}

TEST(Compress, RoundTripsText) {
  const auto original = bytes_of(
      "the quick brown fox jumps over the lazy dog and then the quick "
      "brown fox does it again and again and again");
  const auto compressed = compress(original);
  const auto restored = decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, original);
  EXPECT_LT(compressed.size(), original.size());
}

TEST(Compress, HighlyRepetitiveDataShrinksHard) {
  std::vector<std::uint8_t> original(100000, 'A');
  const auto compressed = compress(original);
  EXPECT_LT(compression_ratio(original, compressed), 0.02);
  const auto restored = decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, original);
}

TEST(Compress, OverlappingMatchesReplicate) {
  // "abcabcabc..." exercises dist < len copies.
  std::vector<std::uint8_t> original;
  for (int i = 0; i < 1000; ++i) {
    original.push_back(static_cast<std::uint8_t>('a' + (i % 3)));
  }
  const auto restored = decompress(compress(original));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, original);
}

TEST(Compress, RandomDataRoundTripsWithoutBlowup) {
  Rng rng(5);
  std::vector<std::uint8_t> original(50000);
  for (auto& b : original) b = static_cast<std::uint8_t>(rng.bits());
  const auto compressed = compress(original);
  // Incompressible data grows only by the framing overhead.
  EXPECT_LT(compression_ratio(original, compressed), 1.02);
  const auto restored = decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, original);
}

TEST(Compress, TruncatedHeaderPcapCompressesWell) {
  // The gathering-phase payload: 200 B-truncated pcaps of encapsulated
  // traffic. Repeated header structure should compress substantially.
  Rng rng(7);
  const auto profiles = traffic::make_site_profiles(rng, 1);
  traffic::FlowSpec flow = traffic::draw_flow(rng, profiles[0]);
  pcap::PcapWriter writer(200);
  for (int i = 0; i < 2000; ++i) {
    writer.write(traffic::make_data_frame(
        flow, static_cast<Nanos>(i) * kMicrosecond,
        static_cast<std::uint32_t>(i)));
  }
  const std::vector<std::uint8_t> original = writer.take_buffer();
  const auto compressed = compress(original);
  EXPECT_LT(compression_ratio(original, compressed), 0.35);
  const auto restored = decompress(compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, original);
}

TEST(Decompress, RejectsGarbage) {
  EXPECT_FALSE(decompress({}).has_value());
  EXPECT_FALSE(decompress(bytes_of("not the magic!")).has_value());
  // Valid magic, truncated token stream.
  auto compressed = compress(bytes_of("hello hello hello hello"));
  compressed.pop_back();
  EXPECT_FALSE(decompress(compressed).has_value());
}

TEST(Decompress, RejectsBadBackReference) {
  // Hand-build a stream whose match reaches before the start.
  std::vector<std::uint8_t> evil = {'P', 'W', 'Z', '1', 4, 0, 0, 0,
                                    0x01, 10, 0, 4};
  EXPECT_FALSE(decompress(evil).has_value());
}

TEST(Decompress, RejectsLengthMismatch) {
  auto compressed = compress(bytes_of("abcdefgh"));
  compressed[4] = 99;  // Lie about the original size.
  EXPECT_FALSE(decompress(compressed).has_value());
}

TEST(Compress, ReusedCompressorMatchesFreeFunction) {
  // One Compressor across many calls (the per-worker scratch pattern) must
  // emit exactly what a fresh context would: the epoch tag retires every
  // stale table entry between calls.
  Compressor reused;
  Rng rng(21);
  std::vector<std::vector<std::uint8_t>> inputs;
  inputs.push_back({});
  inputs.push_back(bytes_of("abcd"));
  inputs.push_back(std::vector<std::uint8_t>(4096, 0x42));
  inputs.push_back(bytes_of(
      "the quick brown fox jumps over the lazy dog and then the quick "
      "brown fox does it again"));
  // Pseudo-random bytes: adversarial for stale-match reuse, since any
  // surviving entry from a previous call would alias a fresh hash slot.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::uint8_t> noise(2000);
    for (auto& b : noise) {
      b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    }
    inputs.push_back(std::move(noise));
  }
  inputs.push_back(bytes_of("abcd"));  // Repeat an early input verbatim.

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto via_reused = reused.compress(inputs[i]);
    const auto via_fresh = compress(inputs[i]);
    EXPECT_EQ(via_reused, via_fresh) << "input " << i;
    const auto restored = decompress(via_reused);
    ASSERT_TRUE(restored.has_value()) << "input " << i;
    EXPECT_EQ(*restored, inputs[i]) << "input " << i;
  }
}

TEST(Compress, RatioHelper) {
  std::vector<std::uint8_t> a(100, 1), b(25, 1);
  EXPECT_DOUBLE_EQ(compression_ratio(a, b), 0.25);
  EXPECT_DOUBLE_EQ(compression_ratio({}, b), 1.0);
}

}  // namespace
}  // namespace patchwork::util
