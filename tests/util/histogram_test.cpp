#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace patchwork::util {
namespace {

TEST(Histogram, BucketsValuesCorrectly) {
  Histogram h({0, 10, 20, 30});
  h.add(0);    // [0,10)
  h.add(9.9);  // [0,10)
  h.add(10);   // [10,20)
  h.add(25);   // [20,30)
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h({10, 20});
  h.add(5);
  h.add(20);
  h.add(1000);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h({0, 100});
  h.add(50, 7);
  EXPECT_EQ(h.bucket(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, FractionIncludesOutOfRangeSamples) {
  Histogram h({0, 10});
  h.add(5);
  h.add(100);  // Overflow.
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(Histogram, BoundaryFallsInUpperBucket) {
  // The paper's frame-size bins are [lo, hi): 1519 must land in the
  // 1519-2047 bucket, not 1024-1518.
  Histogram h({1024, 1519, 2048});
  h.add(1519);
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(1), 1u);
}

TEST(Histogram, PaperFrameSizeBinsLabel) {
  Histogram h({64, 65, 128});
  EXPECT_EQ(h.bucket_label(1), "[65, 128)");
}

TEST(Log2Histogram, BucketBoundaries) {
  Log2Histogram h;
  h.add(1);     // [1,2)    k=0
  h.add(2);     // [2,4)    k=1
  h.add(3);     // [2,4)    k=1
  h.add(1024);  // [1024,2048) k=10
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Log2Histogram, RoundedUpSumUsesUpperBound) {
  Log2Histogram h;
  // The paper: a latency in [32K, 64K) ns counts as 64K ns.
  h.add(40000);
  EXPECT_EQ(h.rounded_up_sum(), 65536u);
}

TEST(Log2Histogram, RoundedUpSumAboveExcludesFastBuckets) {
  Log2Histogram h;
  h.add(1000);    // ~2^10 bucket: excluded below.
  h.add(50000);   // [32768, 65536): included.
  h.add(200000);  // [131072, 262144): included.
  EXPECT_EQ(h.rounded_up_sum_above(32768), 65536u + 262144u);
  EXPECT_GT(h.rounded_up_sum(), h.rounded_up_sum_above(32768));
}

TEST(Log2Histogram, ExactSumTracksRawValues) {
  Log2Histogram h;
  h.add(10, 3);
  h.add(100);
  EXPECT_EQ(h.exact_sum(), 130u);
}

TEST(Log2Histogram, ZeroValueLandsInFirstBucket) {
  Log2Histogram h;
  h.add(0);
  EXPECT_EQ(h.bucket(0), 1u);
}

}  // namespace
}  // namespace patchwork::util
