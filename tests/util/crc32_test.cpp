#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace patchwork::util {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Crc32, KnownVectors) {
  // The IEEE "check" value and a couple of spot checks.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto all = bytes_of("patchwork archive block payload");
  const std::span<const std::uint8_t> head(all.data(), 10);
  const std::span<const std::uint8_t> tail(all.data() + 10, all.size() - 10);
  EXPECT_EQ(crc32(tail, crc32(head)), crc32(all));
}

TEST(Crc32, DetectsSingleFlippedByte) {
  auto payload = bytes_of("the quick brown fox jumps over the lazy dog");
  const std::uint32_t good = crc32(payload);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] ^= 0x40;
    EXPECT_NE(crc32(payload), good) << "flip at " << i << " undetected";
    payload[i] ^= 0x40;
  }
}

}  // namespace
}  // namespace patchwork::util
