#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace patchwork::util {
namespace {

TEST(Logger, RecordsInOrder) {
  Logger log;
  log.info(10, "a", "first");
  log.warn(20, "b", "second");
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].message, "first");
  EXPECT_EQ(log.records()[1].level, LogLevel::kWarn);
}

TEST(Logger, MinLevelFilters) {
  Logger log(LogLevel::kWarn);
  log.debug(0, "c", "ignored");
  log.info(0, "c", "ignored too");
  log.error(0, "c", "kept");
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].message, "kept");
}

TEST(Logger, AtLeastSelectsSeverity) {
  Logger log;
  log.debug(0, "x", "d");
  log.warn(0, "x", "w");
  log.error(0, "x", "e");
  EXPECT_EQ(log.at_least(LogLevel::kWarn).size(), 2u);
}

TEST(Logger, ForComponent) {
  Logger log;
  log.info(0, "profiler/S1", "a");
  log.info(0, "profiler/S2", "b");
  log.info(0, "profiler/S1", "c");
  EXPECT_EQ(log.for_component("profiler/S1").size(), 2u);
}

TEST(Logger, CountContaining) {
  Logger log;
  log.info(0, "x", "congestion: mirror dropping");
  log.info(0, "x", "sample ok");
  log.warn(0, "x", "congestion: again");
  EXPECT_EQ(log.count_containing("congestion"), 2u);
}

TEST(Logger, MergeSortsByTime) {
  Logger a, b;
  a.info(30, "a", "late");
  b.info(10, "b", "early");
  a.merge(b);
  ASSERT_EQ(a.records().size(), 2u);
  EXPECT_EQ(a.records()[0].message, "early");
  EXPECT_EQ(a.records()[1].message, "late");
}

TEST(Logger, RenderContainsLevelAndComponent) {
  Logger log;
  log.error(2 * kSecond, "dpdk-writer", "ring overflow");
  const std::string text = log.render();
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("dpdk-writer"), std::string::npos);
  EXPECT_NE(text.find("ring overflow"), std::string::npos);
}

TEST(Logger, BoundedBufferEvictsOldestAndCountsDrops) {
  const std::uint64_t before = logger_dropped_total();
  Logger log;
  log.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    log.info(i, "x", "msg" + std::to_string(i));
  }
  ASSERT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.records()[0].message, "msg2");  // msg0/msg1 evicted.
  EXPECT_EQ(log.records()[2].message, "msg4");
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(logger_dropped_total() - before, 2u);
}

TEST(Logger, ZeroCapacityMeansUnbounded) {
  Logger log;
  log.set_capacity(0);
  for (int i = 0; i < 100; ++i) log.info(i, "x", "m");
  EXPECT_EQ(log.records().size(), 100u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(LogLevelParse, NamesAndCase) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
}

TEST(LiveSinkSpecParse, LevelOnlyMeansStderr) {
  const auto spec = parse_live_sink_spec("warn");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->min_level, LogLevel::kWarn);
  EXPECT_TRUE(spec->path.empty());
}

TEST(LiveSinkSpecParse, LevelColonPath) {
  const auto spec = parse_live_sink_spec("debug:/tmp/run.log");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->min_level, LogLevel::kDebug);
  EXPECT_EQ(spec->path, "/tmp/run.log");
}

TEST(LiveSinkSpecParse, BadLevelRejected) {
  EXPECT_FALSE(parse_live_sink_spec("chatty").has_value());
  EXPECT_FALSE(parse_live_sink_spec("chatty:/tmp/x").has_value());
}

TEST(LiveSink, MirrorsRecordsToFileAboveThreshold) {
  const std::string path = ::testing::TempDir() + "/patchwork_live_sink.log";
  std::remove(path.c_str());
  set_live_sink(LiveSinkSpec{LogLevel::kWarn, path});

  Logger log;
  log.info(1 * kSecond, "quiet", "below threshold");
  log.warn(2 * kSecond, "profiler/S1", "setup: back-off to 2 instance(s)");
  set_live_sink(std::nullopt);  // Disable before reading.
  log.error(3 * kSecond, "x", "not mirrored after disable");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_EQ(content.find("below threshold"), std::string::npos);
  EXPECT_NE(content.find("back-off to 2"), std::string::npos);
  EXPECT_NE(content.find("WARN"), std::string::npos);
  EXPECT_EQ(content.find("not mirrored"), std::string::npos);
}

}  // namespace
}  // namespace patchwork::util
