#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace patchwork::util {
namespace {

TEST(Logger, RecordsInOrder) {
  Logger log;
  log.info(10, "a", "first");
  log.warn(20, "b", "second");
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].message, "first");
  EXPECT_EQ(log.records()[1].level, LogLevel::kWarn);
}

TEST(Logger, MinLevelFilters) {
  Logger log(LogLevel::kWarn);
  log.debug(0, "c", "ignored");
  log.info(0, "c", "ignored too");
  log.error(0, "c", "kept");
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].message, "kept");
}

TEST(Logger, AtLeastSelectsSeverity) {
  Logger log;
  log.debug(0, "x", "d");
  log.warn(0, "x", "w");
  log.error(0, "x", "e");
  EXPECT_EQ(log.at_least(LogLevel::kWarn).size(), 2u);
}

TEST(Logger, ForComponent) {
  Logger log;
  log.info(0, "profiler/S1", "a");
  log.info(0, "profiler/S2", "b");
  log.info(0, "profiler/S1", "c");
  EXPECT_EQ(log.for_component("profiler/S1").size(), 2u);
}

TEST(Logger, CountContaining) {
  Logger log;
  log.info(0, "x", "congestion: mirror dropping");
  log.info(0, "x", "sample ok");
  log.warn(0, "x", "congestion: again");
  EXPECT_EQ(log.count_containing("congestion"), 2u);
}

TEST(Logger, MergeSortsByTime) {
  Logger a, b;
  a.info(30, "a", "late");
  b.info(10, "b", "early");
  a.merge(b);
  ASSERT_EQ(a.records().size(), 2u);
  EXPECT_EQ(a.records()[0].message, "early");
  EXPECT_EQ(a.records()[1].message, "late");
}

TEST(Logger, RenderContainsLevelAndComponent) {
  Logger log;
  log.error(2 * kSecond, "dpdk-writer", "ring overflow");
  const std::string text = log.render();
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("dpdk-writer"), std::string::npos);
  EXPECT_NE(text.find("ring overflow"), std::string::npos);
}

}  // namespace
}  // namespace patchwork::util
