#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace patchwork::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesHeaderImmediately) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_EQ(os.str(), "a,b\n");
}

TEST(CsvWriter, MixedTypesRow) {
  std::ostringstream os;
  CsvWriter csv(os, {"name", "count", "ratio"});
  csv.begin_row()
      .add("x")
      .add(static_cast<std::uint64_t>(3))
      .add(0.5)
      .end_row();
  EXPECT_EQ(os.str(), "name,count,ratio\nx,3,0.5\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, DoublesRoundTripExactly) {
  // Regression: doubles used to be written at default ostream precision
  // (6 significant digits), so 0.123456789 became "0.123457". The writer
  // now emits the shortest string that parses back to the identical bits.
  const double values[] = {0.123456789, 1234567.891, 1.0 / 3.0,
                           8589934592.25, 1e-9};
  std::ostringstream os;
  CsvWriter csv(os, {"v"});
  for (double v : values) csv.begin_row().add(v).end_row();
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);  // Header.
  for (double v : values) {
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(std::stod(line), v) << line;
  }
}

TEST(CsvWriter, DoubleFormattingStaysHumanReadableForSimpleValues) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b", "c"});
  csv.begin_row().add(0.5).add(42.0).add(-3.25).end_row();
  EXPECT_EQ(os.str(), "a,b,c\n0.5,42,-3.25\n");
}

TEST(CsvWriter, RowConvenience) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.row({"1", "two,three"});
  EXPECT_EQ(os.str(), "a,b\n1,\"two,three\"\n");
}

}  // namespace
}  // namespace patchwork::util
