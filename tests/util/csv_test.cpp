#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace patchwork::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesHeaderImmediately) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_EQ(os.str(), "a,b\n");
}

TEST(CsvWriter, MixedTypesRow) {
  std::ostringstream os;
  CsvWriter csv(os, {"name", "count", "ratio"});
  csv.begin_row()
      .add("x")
      .add(static_cast<std::uint64_t>(3))
      .add(0.5)
      .end_row();
  EXPECT_EQ(os.str(), "name,count,ratio\nx,3,0.5\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, RowConvenience) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.row({"1", "two,three"});
  EXPECT_EQ(os.str(), "a,b\n1,\"two,three\"\n");
}

}  // namespace
}  // namespace patchwork::util
