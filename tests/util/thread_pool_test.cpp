#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace patchwork::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&ran] { ++ran; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  bool ran = false;
  auto future = pool.submit([&ran] { ran = true; });
  // In serial mode the task has already run by the time submit() returns.
  EXPECT_TRUE(ran);
  future.get();
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, ZeroThreadsStillCarriesExceptions) {
  ThreadPool pool(0);
  auto future = pool.submit([] { throw std::runtime_error("inline fail"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) pool.submit([&ran] { ++ran; });
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(Parallel, ForVisitsEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 8);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ForSerialWhenZeroThreads) {
  std::vector<int> hits(100, 0);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 0);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ForRethrowsTaskException) {
  EXPECT_THROW(
      parallel_for(
          64,
          [](std::size_t i) {
            if (i == 17) throw std::runtime_error("index 17");
          },
          4),
      std::runtime_error);
}

TEST(Parallel, MapPreservesInputOrder) {
  std::vector<int> in(257);
  std::iota(in.begin(), in.end(), 0);
  const std::vector<int> out =
      parallel_map(in, [](const int& v) { return v * v; }, 8);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], in[i] * in[i]);
  }
}

TEST(Parallel, NestedParallelForDegradesToSerial) {
  std::atomic<int> total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        parallel_for(8, [&](std::size_t) { ++total; }, 8);
      },
      4);
  EXPECT_EQ(total.load(), 64);
}

TEST(Parallel, ThreadCountOverrideWins) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(0);
  EXPECT_EQ(thread_count(), 0u);
  set_thread_count(std::nullopt);
  EXPECT_GE(thread_count(), 1u);  // env or hardware_concurrency fallback.
}

}  // namespace
}  // namespace patchwork::util
