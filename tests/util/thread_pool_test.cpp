#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace patchwork::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&ran] { ++ran; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  bool ran = false;
  auto future = pool.submit([&ran] { ran = true; });
  // In serial mode the task has already run by the time submit() returns.
  EXPECT_TRUE(ran);
  future.get();
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, ZeroThreadsStillCarriesExceptions) {
  ThreadPool pool(0);
  auto future = pool.submit([] { throw std::runtime_error("inline fail"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) pool.submit([&ran] { ++ran; });
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(Parallel, ForVisitsEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 8);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ForSerialWhenZeroThreads) {
  std::vector<int> hits(100, 0);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 0);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ForRethrowsTaskException) {
  EXPECT_THROW(
      parallel_for(
          64,
          [](std::size_t i) {
            if (i == 17) throw std::runtime_error("index 17");
          },
          4),
      std::runtime_error);
}

TEST(Parallel, MapPreservesInputOrder) {
  std::vector<int> in(257);
  std::iota(in.begin(), in.end(), 0);
  const std::vector<int> out =
      parallel_map(in, [](const int& v) { return v * v; }, 8);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], in[i] * in[i]);
  }
}

TEST(Parallel, NestedParallelForDegradesToSerial) {
  std::atomic<int> total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        parallel_for(8, [&](std::size_t) { ++total; }, 8);
      },
      4);
  EXPECT_EQ(total.load(), 64);
}

TEST(TaskGroup, RunsEveryTaskOnce) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::vector<std::atomic<int>> hits(256);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    group.spawn([&hits, i] { ++hits[i]; });
  }
  group.wait();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(TaskGroup, InlineWhenPoolHasNoWorkers) {
  ThreadPool pool(0);
  TaskGroup group(pool);
  int ran = 0;
  group.spawn([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);  // Spawn ran the task inline, before wait().
  group.wait();
  EXPECT_EQ(ran, 1);
}

TEST(TaskGroup, WaiterHelpsFromOutsideThePool) {
  // A single-worker pool with a blocked worker: the waiting caller must
  // steal and run the remaining tasks itself rather than deadlock.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  TaskGroup group(pool);
  group.spawn([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    group.spawn([&done, &release, i] {
      ++done;
      if (i == 7) release.store(true);  // Caller-run tasks free the worker.
    });
  }
  group.wait();
  EXPECT_EQ(done.load(), 8);
  EXPECT_TRUE(release.load());
}

TEST(TaskGroup, NestedSpawnAndWaitInsideWorkerTask) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 4; ++i) {
    outer.spawn([&pool, &inner_total] {
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) {
        inner.spawn([&inner_total] { ++inner_total; });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(TaskGroup, FirstExceptionPropagatesAfterDrain) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> completed{0};
  for (int i = 0; i < 16; ++i) {
    group.spawn([&completed, i] {
      if (i == 5) throw std::runtime_error("boom");
      ++completed;
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // Every non-throwing task still ran.
}

TEST(TaskGroup, ReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) group.spawn([&count] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(TaskGroup, StealCounterAdvancesUnderImbalance) {
  // All tasks are dealt round-robin from a non-worker thread; with several
  // workers and spin-heavy tasks at least one steal should occur across
  // repeats. The counter is monotonic pool telemetry, so any nonzero
  // total proves the path is exercised.
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) {
      group.spawn([] {
        volatile int sink = 0;
        for (int k = 0; k < 1000; ++k) sink = sink + k;
      });
    }
    group.wait();
  }
  EXPECT_GT(pool.stats().tasks_stolen + pool.stats().tasks_executed, 0u);
  EXPECT_EQ(pool.stats().tasks_submitted, 8u * 64u);
}

TEST(TaskGroup, ManyGroupsInterleaved) {
  ThreadPool pool(4);
  std::vector<std::unique_ptr<TaskGroup>> groups;
  std::atomic<int> total{0};
  for (int g = 0; g < 8; ++g) {
    groups.push_back(std::make_unique<TaskGroup>(pool));
    for (int i = 0; i < 32; ++i) {
      groups.back()->spawn([&total] { ++total; });
    }
  }
  for (auto& group : groups) group->wait();
  EXPECT_EQ(total.load(), 8 * 32);
}

TEST(Parallel, ThreadCountOverrideWins) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(0);
  EXPECT_EQ(thread_count(), 0u);
  set_thread_count(std::nullopt);
  EXPECT_GE(thread_count(), 1u);  // env or hardware_concurrency fallback.
}

}  // namespace
}  // namespace patchwork::util
