#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace patchwork::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // Classic population-stddev example.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, MedianOfOddCount) {
  std::vector<double> v = {3, 1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> v = {5, 1, 9};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentiles, MatchesSingleCallPathExactly) {
  // The multi-percentile variant sorts once; every entry must equal the
  // copy-and-sort-per-call path bit-for-bit, including edge percentiles.
  std::vector<double> v = {7.5, 1.0, 3.25, 9.0, 2.0, 2.0, 100.5, 0.125};
  const std::vector<double> ps = {0.0, 25.0, 50.0, 95.0, 99.0, 100.0};
  const std::vector<double> multi = percentiles(v, ps);
  ASSERT_EQ(multi.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(multi[i], percentile(v, ps[i])) << "p" << ps[i];
  }
}

TEST(Percentiles, SingleElementAndSinglePercentile) {
  std::vector<double> v = {42.0};
  const std::vector<double> ps = {50.0};
  const std::vector<double> multi = percentiles(v, ps);
  ASSERT_EQ(multi.size(), 1u);
  EXPECT_DOUBLE_EQ(multi[0], 42.0);
}

TEST(Ecdf, AtValues) {
  std::vector<double> sorted = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ecdf_at(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf_at(sorted, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf_at(sorted, 10.0), 1.0);
}

TEST(Ecdf, PairsAreMonotone) {
  auto pairs = ecdf({3.0, 1.0, 1.0, 2.0});
  ASSERT_EQ(pairs.size(), 3u);  // Distinct values only.
  EXPECT_DOUBLE_EQ(pairs[0].first, 1.0);
  EXPECT_DOUBLE_EQ(pairs[0].second, 0.5);  // Two of four samples are <= 1.
  EXPECT_DOUBLE_EQ(pairs.back().second, 1.0);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GT(pairs[i].first, pairs[i - 1].first);
    EXPECT_GT(pairs[i].second, pairs[i - 1].second);
  }
}

}  // namespace
}  // namespace patchwork::util
