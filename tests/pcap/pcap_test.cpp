#include "pcap/pcap.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/frame_builder.hpp"
#include "util/byte_io.hpp"

namespace patchwork::pcap {
namespace {

net::Frame test_frame(std::size_t size, util::Nanos ts) {
  return net::FrameBuilder()
      .ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .udp(1000, 2000)
      .pad_to(size)
      .build(ts);
}

TEST(Pcap, GlobalHeaderFields) {
  PcapWriter writer(200);
  const auto& buf = writer.buffer();
  ASSERT_EQ(buf.size(), kGlobalHeaderSize);
  EXPECT_EQ(util::get_le32(buf, 0), kMagicMicro);
  EXPECT_EQ(util::get_le16(buf, 4), 2u);   // Version major.
  EXPECT_EQ(util::get_le16(buf, 6), 4u);   // Version minor.
  EXPECT_EQ(util::get_le32(buf, 16), 200u);  // Snaplen.
  EXPECT_EQ(util::get_le32(buf, 20), kLinkTypeEthernet);
}

TEST(Pcap, RoundTripsFrames) {
  PcapWriter writer(65535);
  writer.write(test_frame(100, 5 * util::kSecond + 123 * util::kMicrosecond));
  writer.write(test_frame(200, 6 * util::kSecond));
  EXPECT_EQ(writer.frames_written(), 2u);

  auto reader = PcapReader::open(writer.take_buffer());
  ASSERT_TRUE(reader.has_value());
  auto f1 = reader->next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->wire_length(), 100u);
  EXPECT_EQ(f1->captured_length(), 100u);
  EXPECT_EQ(f1->timestamp(),
            5 * util::kSecond + 123 * util::kMicrosecond);
  auto f2 = reader->next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->wire_length(), 200u);
  EXPECT_FALSE(reader->next().has_value());
  EXPECT_EQ(reader->frames_read(), 2u);
  EXPECT_EQ(reader->bad_records(), 0u);
}

TEST(Pcap, SnaplenTruncatesButKeepsOrigLen) {
  PcapWriter writer(64);
  writer.write(test_frame(1500, 0));
  auto reader = PcapReader::open(writer.take_buffer());
  ASSERT_TRUE(reader.has_value());
  auto f = reader->next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->captured_length(), 64u);
  EXPECT_EQ(f->wire_length(), 1500u);
  EXPECT_TRUE(f->truncated());
}

TEST(Pcap, NanosecondResolution) {
  PcapWriter writer(65535, TimestampResolution::kNano);
  writer.write(test_frame(100, 123456789));
  auto reader = PcapReader::open(writer.take_buffer());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->info().resolution, TimestampResolution::kNano);
  auto f = reader->next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->timestamp(), 123456789u);
}

TEST(Pcap, MicroResolutionRoundsDown) {
  PcapWriter writer(65535, TimestampResolution::kMicro);
  writer.write(test_frame(100, 123456789));  // 123456.789 us.
  auto reader = PcapReader::open(writer.take_buffer());
  auto f = reader->next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->timestamp(), 123456000u);
}

TEST(Pcap, OpenRejectsBadMagic) {
  std::vector<std::uint8_t> junk(kGlobalHeaderSize, 0xaa);
  EXPECT_FALSE(PcapReader::open(junk).has_value());
}

TEST(Pcap, OpenRejectsShortBuffer) {
  EXPECT_FALSE(PcapReader::open({1, 2, 3}).has_value());
}

TEST(Pcap, CorruptRecordCountsAsBad) {
  PcapWriter writer(65535);
  writer.write(test_frame(100, 0));
  std::vector<std::uint8_t> bytes = writer.take_buffer();
  // Lie about the record's captured length so it overruns the buffer.
  bytes[kGlobalHeaderSize + 8] = 0xff;
  bytes[kGlobalHeaderSize + 9] = 0xff;
  auto reader = PcapReader::open(std::move(bytes));
  ASSERT_TRUE(reader.has_value());
  EXPECT_FALSE(reader->next().has_value());
  EXPECT_EQ(reader->bad_records(), 1u);
}

TEST(Pcap, InconsistentLengthsSkipJustTheBadRecord) {
  PcapWriter writer(65535);
  writer.write(test_frame(100, 1 * util::kSecond));
  writer.write(test_frame(120, 2 * util::kSecond));
  writer.write(test_frame(140, 3 * util::kSecond));
  std::vector<std::uint8_t> bytes = writer.take_buffer();
  // Corrupt the middle record's orig_len so incl > orig while the body
  // still fits — the reader should resync at the third record.
  const std::size_t second_record = kGlobalHeaderSize + kRecordHeaderSize + 100;
  bytes[second_record + 12] = 50;  // orig_len = 50 (LE), below incl of 120.
  bytes[second_record + 13] = 0;
  bytes[second_record + 14] = 0;
  bytes[second_record + 15] = 0;
  auto reader = PcapReader::open(std::move(bytes));
  ASSERT_TRUE(reader.has_value());
  auto f1 = reader->next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->wire_length(), 100u);
  auto f3 = reader->next();
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(f3->wire_length(), 140u);
  EXPECT_EQ(f3->timestamp(), 3 * util::kSecond);
  EXPECT_FALSE(reader->next().has_value());
  EXPECT_EQ(reader->frames_read(), 2u);
  EXPECT_EQ(reader->bad_records(), 1u);
}

TEST(Pcap, NextViewIsZeroCopyIntoReaderBuffer) {
  PcapWriter writer(65535);
  writer.write(test_frame(100, 5 * util::kSecond));
  writer.write(test_frame(200, 6 * util::kSecond));
  auto reader = PcapReader::open(writer.take_buffer());
  ASSERT_TRUE(reader.has_value());

  auto v1 = reader->next_view();
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->bytes.size(), 100u);
  EXPECT_EQ(v1->wire_length, 100u);
  EXPECT_EQ(v1->timestamp, 5 * util::kSecond);
  EXPECT_FALSE(v1->truncated());

  auto v2 = reader->next_view();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->bytes.size(), 200u);
  // Consecutive views are adjacent slices of one buffer, record header
  // apart — i.e. no per-record copies were made.
  EXPECT_EQ(v2->bytes.data(),
            v1->bytes.data() + v1->bytes.size() + kRecordHeaderSize);
  EXPECT_FALSE(reader->next_view().has_value());
  EXPECT_EQ(reader->frames_read(), 2u);
}

TEST(Pcap, ViewAndFrameAgreeOnTruncatedRecords) {
  PcapWriter writer(64);
  writer.write(test_frame(1500, 7 * util::kSecond));
  const std::vector<std::uint8_t> bytes = writer.buffer();

  auto views = PcapReader::open(bytes);
  auto frames = PcapReader::open(bytes);
  auto v = views->next_view();
  auto f = frames->next();
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(v->bytes.size(), f->captured_length());
  EXPECT_EQ(v->wire_length, f->wire_length());
  EXPECT_EQ(v->timestamp, f->timestamp());
  EXPECT_TRUE(v->truncated());
  EXPECT_TRUE(std::equal(v->bytes.begin(), v->bytes.end(),
                         f->bytes().begin()));
}

TEST(Pcap, StreamSizeFormula) {
  PcapWriter writer(64);
  const std::size_t n = 10;
  for (std::size_t i = 0; i < n; ++i) writer.write(test_frame(64, 0));
  EXPECT_EQ(writer.bytes_written(), pcap_stream_size(n, 64));
}

TEST(Pcap, WriteRecordMatchesWriteByteForByte) {
  // The zero-copy record path must emit the same stream as write(Frame),
  // for both resolutions, with and without snaplen truncation.
  for (const TimestampResolution res :
       {TimestampResolution::kMicro, TimestampResolution::kNano}) {
    for (const std::uint32_t snaplen : {std::uint32_t{65535},
                                        std::uint32_t{96}}) {
      PcapWriter via_frames(snaplen, res);
      PcapWriter via_records(snaplen, res);
      const util::Nanos ts[] = {5 * util::kSecond + 123 * util::kMicrosecond,
                                6 * util::kSecond + 7, 0};
      const std::size_t sizes[] = {64, 300, 1514};
      for (std::size_t i = 0; i < 3; ++i) {
        const net::Frame f = test_frame(sizes[i], ts[i]);
        via_frames.write(f);
        via_records.write_record(f.bytes(), f.wire_length(), f.timestamp());
      }
      EXPECT_EQ(via_frames.frames_written(), via_records.frames_written());
      EXPECT_EQ(via_frames.buffer(), via_records.buffer())
          << "res=" << static_cast<int>(res) << " snaplen=" << snaplen;
    }
  }
}

TEST(Pcap, WriteRecordReturnsMutableSpanOverStream) {
  // In-place post-write edits (anonymization) must land in the stream.
  PcapWriter writer(65535);
  const net::Frame f = test_frame(100, util::kSecond);
  std::span<std::uint8_t> record =
      writer.write_record(f.bytes(), f.wire_length(), f.timestamp());
  ASSERT_EQ(record.size(), 100u);
  EXPECT_TRUE(std::equal(record.begin(), record.end(), f.bytes().begin()));
  std::fill(record.begin(), record.begin() + 6, std::uint8_t{0xEE});

  auto reader = PcapReader::open(writer.take_buffer());
  ASSERT_TRUE(reader.has_value());
  auto back = reader->next();
  ASSERT_TRUE(back.has_value());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(back->bytes()[i], 0xEE);
  EXPECT_TRUE(std::equal(back->bytes().begin() + 6, back->bytes().end(),
                         f.bytes().begin() + 6));
}

TEST(Pcap, WriteRecordSpanCoversOnlySnapLength) {
  // With truncation, the returned span is the captured prefix actually in
  // the stream, not the full wire frame.
  PcapWriter writer(64);
  const net::Frame f = test_frame(1500, 0);
  std::span<std::uint8_t> record =
      writer.write_record(f.bytes(), f.wire_length(), f.timestamp());
  EXPECT_EQ(record.size(), 64u);
  auto reader = PcapReader::open(writer.take_buffer());
  auto back = reader->next();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->captured_length(), 64u);
  EXPECT_EQ(back->wire_length(), 1500u);
}

}  // namespace
}  // namespace patchwork::pcap
