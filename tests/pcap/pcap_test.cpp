#include "pcap/pcap.hpp"

#include <gtest/gtest.h>

#include "net/frame_builder.hpp"
#include "util/byte_io.hpp"

namespace patchwork::pcap {
namespace {

net::Frame test_frame(std::size_t size, util::Nanos ts) {
  return net::FrameBuilder()
      .ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .udp(1000, 2000)
      .pad_to(size)
      .build(ts);
}

TEST(Pcap, GlobalHeaderFields) {
  PcapWriter writer(200);
  const auto& buf = writer.buffer();
  ASSERT_EQ(buf.size(), kGlobalHeaderSize);
  EXPECT_EQ(util::get_le32(buf, 0), kMagicMicro);
  EXPECT_EQ(util::get_le16(buf, 4), 2u);   // Version major.
  EXPECT_EQ(util::get_le16(buf, 6), 4u);   // Version minor.
  EXPECT_EQ(util::get_le32(buf, 16), 200u);  // Snaplen.
  EXPECT_EQ(util::get_le32(buf, 20), kLinkTypeEthernet);
}

TEST(Pcap, RoundTripsFrames) {
  PcapWriter writer(65535);
  writer.write(test_frame(100, 5 * util::kSecond + 123 * util::kMicrosecond));
  writer.write(test_frame(200, 6 * util::kSecond));
  EXPECT_EQ(writer.frames_written(), 2u);

  auto reader = PcapReader::open(writer.take_buffer());
  ASSERT_TRUE(reader.has_value());
  auto f1 = reader->next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->wire_length(), 100u);
  EXPECT_EQ(f1->captured_length(), 100u);
  EXPECT_EQ(f1->timestamp(),
            5 * util::kSecond + 123 * util::kMicrosecond);
  auto f2 = reader->next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->wire_length(), 200u);
  EXPECT_FALSE(reader->next().has_value());
  EXPECT_EQ(reader->frames_read(), 2u);
  EXPECT_EQ(reader->bad_records(), 0u);
}

TEST(Pcap, SnaplenTruncatesButKeepsOrigLen) {
  PcapWriter writer(64);
  writer.write(test_frame(1500, 0));
  auto reader = PcapReader::open(writer.take_buffer());
  ASSERT_TRUE(reader.has_value());
  auto f = reader->next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->captured_length(), 64u);
  EXPECT_EQ(f->wire_length(), 1500u);
  EXPECT_TRUE(f->truncated());
}

TEST(Pcap, NanosecondResolution) {
  PcapWriter writer(65535, TimestampResolution::kNano);
  writer.write(test_frame(100, 123456789));
  auto reader = PcapReader::open(writer.take_buffer());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->info().resolution, TimestampResolution::kNano);
  auto f = reader->next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->timestamp(), 123456789u);
}

TEST(Pcap, MicroResolutionRoundsDown) {
  PcapWriter writer(65535, TimestampResolution::kMicro);
  writer.write(test_frame(100, 123456789));  // 123456.789 us.
  auto reader = PcapReader::open(writer.take_buffer());
  auto f = reader->next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->timestamp(), 123456000u);
}

TEST(Pcap, OpenRejectsBadMagic) {
  std::vector<std::uint8_t> junk(kGlobalHeaderSize, 0xaa);
  EXPECT_FALSE(PcapReader::open(junk).has_value());
}

TEST(Pcap, OpenRejectsShortBuffer) {
  EXPECT_FALSE(PcapReader::open({1, 2, 3}).has_value());
}

TEST(Pcap, CorruptRecordCountsAsBad) {
  PcapWriter writer(65535);
  writer.write(test_frame(100, 0));
  std::vector<std::uint8_t> bytes = writer.take_buffer();
  // Lie about the record's captured length so it overruns the buffer.
  bytes[kGlobalHeaderSize + 8] = 0xff;
  bytes[kGlobalHeaderSize + 9] = 0xff;
  auto reader = PcapReader::open(std::move(bytes));
  ASSERT_TRUE(reader.has_value());
  EXPECT_FALSE(reader->next().has_value());
  EXPECT_EQ(reader->bad_records(), 1u);
}

TEST(Pcap, StreamSizeFormula) {
  PcapWriter writer(64);
  const std::size_t n = 10;
  for (std::size_t i = 0; i < n; ++i) writer.write(test_frame(64, 0));
  EXPECT_EQ(writer.bytes_written(), pcap_stream_size(n, 64));
}

}  // namespace
}  // namespace patchwork::pcap
