// Registry semantics: sharded folds are exact, concurrent updates are safe
// (these tests run under the TSan leg of scripts/check.sh), handles are
// stable, and reset() re-baselines pull counters.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/histogram.hpp"

namespace patchwork::obs {
namespace {

TEST(ObsRegistry, CounterFoldsShardsToExactSum) {
  Registry reg;
  Counter& c = reg.counter("patchwork_test_total", "t");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsRegistry, ConcurrentHistogramUpdatesKeepExactCountAndSum) {
  Registry reg;
  LatencyHistogram& h = reg.histogram("patchwork_test_ns", "t");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<std::uint64_t>(t) * 100 + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    want_sum += (static_cast<std::uint64_t>(t) * 100 + 1) * kPerThread;
  }
  EXPECT_EQ(h.sum(), want_sum);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t n : h.buckets()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsRegistry, GaugeMaxFoldIsScheduleIndependent) {
  Registry reg;
  Gauge& g = reg.gauge("patchwork_test_high_water", "t");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 1000; ++i) {
        g.observe_max(static_cast<double>(t * 1000 + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 7999.0);
}

TEST(ObsRegistry, SameNameAndLabelsReturnsSameHandle) {
  Registry reg;
  Counter& a =
      reg.counter("patchwork_x_total", "t", {{"cause", "ring"}});
  Counter& b =
      reg.counter("patchwork_x_total", "t", {{"cause", "ring"}});
  Counter& other =
      reg.counter("patchwork_x_total", "t", {{"cause", "filter"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(ObsRegistry, HistogramBucketsMatchLog2Histogram) {
  Registry reg;
  LatencyHistogram& h = reg.histogram("patchwork_test_ns", "t");
  util::Log2Histogram want;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull, 1000ull,
                          (1ull << 40) + 17}) {
    h.observe(v);
    want.add(v);
  }
  const util::Log2Histogram got = h.snapshot();
  EXPECT_EQ(got.total(), want.total());
  ASSERT_EQ(got.bucket_count(), want.bucket_count());
  for (std::size_t k = 0; k < want.bucket_count(); ++k) {
    EXPECT_EQ(got.bucket(k), want.bucket(k)) << "k=" << k;
  }
}

TEST(ObsRegistry, ResetZeroesPushMetricsAndRebaselinesPullCounters) {
  Registry reg;
  Counter& c = reg.counter("patchwork_a_total", "t");
  c.add(5);
  std::atomic<std::uint64_t> source{100};
  reg.counter_fn("patchwork_b_total", "t", {}, Determinism::kDeterministic,
                 [&source] { return source.load(); });
  std::string text = reg.expose_text();
  EXPECT_NE(text.find("patchwork_a_total 5"), std::string::npos);
  EXPECT_NE(text.find("patchwork_b_total 100"), std::string::npos);

  reg.reset();
  source += 30;
  text = reg.expose_text();
  EXPECT_NE(text.find("patchwork_a_total 0"), std::string::npos);
  // Pull counters read as deltas since the reset baseline of 100.
  EXPECT_NE(text.find("patchwork_b_total 30"), std::string::npos);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, ConcurrentRegistrationAndExposeIsSafe) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("patchwork_shared_total", "t",
                    {{"worker", std::to_string(t % 2)}})
            .add();
      }
    });
  }
  threads.emplace_back([&reg] {
    for (int i = 0; i < 50; ++i) (void)reg.expose_text();
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("patchwork_shared_total", "t", {{"worker", "0"}})
                    .value() +
                reg.counter("patchwork_shared_total", "t", {{"worker", "1"}})
                    .value(),
            800u);
}

TEST(ObsRegistry, ProcessRegistryHasPoolAndLoggerBuiltins) {
  const std::string text = expose_text();
  EXPECT_NE(text.find("patchwork_pool_tasks_total"), std::string::npos);
  EXPECT_NE(text.find("patchwork_pool_queue_depth_high_water"),
            std::string::npos);
  EXPECT_NE(text.find("patchwork_log_dropped_records_total"),
            std::string::npos);
  // Pool scheduling metrics are wall-clock class: absent from the
  // byte-comparable view.
  const std::string det = expose_text(/*deterministic_only=*/true);
  EXPECT_EQ(det.find("patchwork_pool_tasks_total"), std::string::npos);
  EXPECT_NE(det.find("patchwork_log_dropped_records_total"),
            std::string::npos);
}

}  // namespace
}  // namespace patchwork::obs
