// Golden-file test of the Prometheus text exposition: exact bytes for a
// registry covering every family type, help/label escaping, cumulative
// histogram buckets with +Inf, and name sorting independent of
// registration order.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace patchwork::obs {
namespace {

Registry& golden_registry(Registry& reg) {
  // Register deliberately out of name order; exposition must sort.
  reg.counter("patchwork_zeta_total", "Last family").add(7);
  Counter& alpha = reg.counter("patchwork_alpha_total",
                               "Help with \\ and \n newline",
                               {{"cause", "ring \"overflow\"\n"}});
  alpha.add(3);
  reg.gauge("patchwork_mid_gauge", "A gauge").set(2.5);
  LatencyHistogram& lat = reg.histogram("patchwork_lat_ns", "Latency");
  lat.observe(1);
  lat.observe(3);
  lat.observe(100);
  reg.counter("patchwork_wall_total", "Wall clock", {},
              Determinism::kWallClock)
      .add(9);
  return reg;
}

constexpr const char* kGolden =
    "# HELP patchwork_alpha_total Help with \\\\ and \\n newline\n"
    "# TYPE patchwork_alpha_total counter\n"
    "patchwork_alpha_total{cause=\"ring \\\"overflow\\\"\\n\"} 3\n"
    "# HELP patchwork_lat_ns Latency\n"
    "# TYPE patchwork_lat_ns histogram\n"
    "patchwork_lat_ns_bucket{le=\"2\"} 1\n"
    "patchwork_lat_ns_bucket{le=\"4\"} 2\n"
    "patchwork_lat_ns_bucket{le=\"8\"} 2\n"
    "patchwork_lat_ns_bucket{le=\"16\"} 2\n"
    "patchwork_lat_ns_bucket{le=\"32\"} 2\n"
    "patchwork_lat_ns_bucket{le=\"64\"} 2\n"
    "patchwork_lat_ns_bucket{le=\"128\"} 3\n"
    "patchwork_lat_ns_bucket{le=\"+Inf\"} 3\n"
    "patchwork_lat_ns_sum 104\n"
    "patchwork_lat_ns_count 3\n"
    "# HELP patchwork_mid_gauge A gauge\n"
    "# TYPE patchwork_mid_gauge gauge\n"
    "patchwork_mid_gauge 2.5\n"
    "# HELP patchwork_wall_total Wall clock\n"
    "# TYPE patchwork_wall_total counter\n"
    "patchwork_wall_total 9\n"
    "# HELP patchwork_zeta_total Last family\n"
    "# TYPE patchwork_zeta_total counter\n"
    "patchwork_zeta_total 7\n";

TEST(ObsExpose, GoldenFullExposition) {
  Registry reg;
  EXPECT_EQ(golden_registry(reg).expose_text(), kGolden);
}

TEST(ObsExpose, DeterministicOnlyOmitsWallClockFamilies) {
  Registry reg;
  const std::string det =
      golden_registry(reg).expose_text(/*deterministic_only=*/true);
  EXPECT_EQ(det.find("patchwork_wall_total"), std::string::npos);
  EXPECT_NE(det.find("patchwork_alpha_total"), std::string::npos);
  EXPECT_NE(det.find("patchwork_lat_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
}

TEST(ObsExpose, OutputIndependentOfRegistrationOrder) {
  Registry forward;
  forward.counter("patchwork_a_total", "a").add(1);
  forward.counter("patchwork_b_total", "b").add(2);
  Registry backward;
  backward.counter("patchwork_b_total", "b").add(2);
  backward.counter("patchwork_a_total", "a").add(1);
  EXPECT_EQ(forward.expose_text(), backward.expose_text());
}

TEST(ObsExpose, SeriesWithinFamilySortByLabelString) {
  Registry reg;
  reg.counter("patchwork_d_total", "d", {{"cause", "zeta"}}).add(1);
  reg.counter("patchwork_d_total", "d", {{"cause", "alpha"}}).add(2);
  const std::string text = reg.expose_text();
  const std::size_t alpha = text.find("cause=\"alpha\"");
  const std::size_t zeta = text.find("cause=\"zeta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, zeta);
}

TEST(ObsExpose, BuildInfoIsOptInAndWallClockClass) {
  // Standalone registries never emit it (golden bytes above stay stable).
  Registry plain;
  plain.counter("patchwork_plain_total", "p").add(1);
  EXPECT_EQ(plain.expose_text().find("patchwork_build_info"),
            std::string::npos);

  // Once enabled, the synthetic gauge appears in name-sorted position in
  // the full exposition with the build identity labels...
  Registry enabled;
  enabled.enable_build_info();
  enabled.counter("patchwork_aaa_total", "before").add(1);
  enabled.counter("patchwork_zzz_total", "after").add(1);
  const std::string full = enabled.expose_text();
  const std::size_t info = full.find(
      "patchwork_build_info{git_describe=\"");
  ASSERT_NE(info, std::string::npos) << full;
  EXPECT_NE(full.find("simd_tier=\""), std::string::npos);
  EXPECT_NE(full.find("threads=\""), std::string::npos);
  EXPECT_NE(full.find("# TYPE patchwork_build_info gauge\n"),
            std::string::npos);
  EXPECT_LT(full.find("patchwork_aaa_total 1"), info);
  EXPECT_LT(info, full.find("patchwork_zzz_total 1"));

  // ...but the thread count label is run-dependent, so the deterministic
  // view still omits it.
  EXPECT_EQ(enabled.expose_text(/*deterministic_only=*/true)
                .find("patchwork_build_info"),
            std::string::npos);

  // The process-wide registry opts in via register_builtins.
  EXPECT_NE(registry().expose_text().find("patchwork_build_info{"),
            std::string::npos);
}

TEST(ObsExpose, EmptyHistogramStillExposesInfSumCount) {
  Registry reg;
  reg.histogram("patchwork_empty_ns", "never observed");
  const std::string text = reg.expose_text();
  EXPECT_NE(text.find("patchwork_empty_ns_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("patchwork_empty_ns_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("patchwork_empty_ns_count 0\n"), std::string::npos);
}

}  // namespace
}  // namespace patchwork::obs
