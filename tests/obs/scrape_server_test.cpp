// Socket-level contract of the live scrape endpoint: real ephemeral-port
// GETs of /metrics and /healthz, the deterministic view, malformed-request
// handling, concurrent readers, and a clean stop that unblocks accept.
#include "obs/scrape_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace patchwork::obs {
namespace {

/// Connect to 127.0.0.1:port, send `request` raw, read until EOF.
std::string raw_round_trip(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  return raw_round_trip(port, "GET " + target +
                                  " HTTP/1.1\r\nHost: localhost\r\n"
                                  "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

TEST(ScrapeServer, ServesMetricsOnAnEphemeralPort) {
  registry().counter("patchwork_scrape_test_total", "scrape test").add(5);
  ScrapeServer server(ScrapeServerOptions{});
  ASSERT_TRUE(server.ok());
  ASSERT_GT(server.port(), 0);

  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("patchwork_scrape_test_total 5\n"), std::string::npos);
  // The scrape is self-describing: build identity rides along.
  EXPECT_NE(body.find("patchwork_build_info{git_describe="),
            std::string::npos);
  // Content-Length matches the body actually sent.
  const std::string cl = "Content-Length: " + std::to_string(body.size());
  EXPECT_NE(response.find(cl), std::string::npos);
  server.stop();
}

TEST(ScrapeServer, DeterministicQuerySelectsTheByteComparableView) {
  registry().counter("patchwork_scrape_det_total", "deterministic").add(1);
  ScrapeServer server(ScrapeServerOptions{});
  ASSERT_TRUE(server.ok());

  const std::string det =
      body_of(http_get(server.port(), "/metrics?deterministic=1"));
  EXPECT_NE(det.find("patchwork_scrape_det_total 1\n"), std::string::npos);
  // Wall-clock families (pool telemetry, build info) are omitted.
  EXPECT_EQ(det.find("patchwork_pool_workers"), std::string::npos);
  EXPECT_EQ(det.find("patchwork_build_info"), std::string::npos);
  // The live deterministic view and the file-export view are the same
  // bytes when the registry is quiet.
  EXPECT_EQ(det, expose_text(/*deterministic_only=*/true));
  server.stop();
}

TEST(ScrapeServer, HealthzReportsUptimeAndPhase) {
  run_phase_gauge().set(2.0);
  ScrapeServer server(ScrapeServerOptions{});
  ASSERT_TRUE(server.ok());
  const std::string response = http_get(server.port(), "/healthz");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"run_phase\":2"), std::string::npos);
  run_phase_gauge().set(0.0);
  server.stop();
}

TEST(ScrapeServer, ManifestIsRebuiltOnDemand) {
  ManifestInfo info;
  info.seed = 99;
  info.config = {{"sites", "4"}};
  ScrapeServerOptions options;
  options.manifest = [info] { return render_manifest(info); };
  ScrapeServer server(std::move(options));
  ASSERT_TRUE(server.ok());
  const std::string body = body_of(http_get(server.port(), "/manifest.json"));
  EXPECT_NE(body.find("\"patchwork_manifest_version\": 1"),
            std::string::npos);
  EXPECT_NE(body.find("\"seed\": 99"), std::string::npos);

  // Without a provider the route is a 404, not a crash.
  ScrapeServer bare(ScrapeServerOptions{});
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(http_get(bare.port(), "/manifest.json")
                .rfind("HTTP/1.1 404", 0),
            0u);
}

TEST(ScrapeServer, MalformedRequestGets400) {
  ScrapeServer server(ScrapeServerOptions{});
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(raw_round_trip(server.port(), "this is not http\r\n\r\n")
                .rfind("HTTP/1.1 400", 0),
            0u);
  EXPECT_EQ(raw_round_trip(server.port(), "GETnospace\r\n\r\n")
                .rfind("HTTP/1.1 400", 0),
            0u);
  // Proper syntax, wrong method / unknown route.
  EXPECT_EQ(raw_round_trip(server.port(),
                           "POST /metrics HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 405", 0),
            0u);
  EXPECT_EQ(http_get(server.port(), "/nope").rfind("HTTP/1.1 404", 0), 0u);
  // The server survives all of it and still serves.
  EXPECT_EQ(http_get(server.port(), "/metrics").rfind("HTTP/1.1 200", 0),
            0u);
  server.stop();
}

TEST(ScrapeServer, ConcurrentReadersAllGetCompleteResponses) {
  registry().counter("patchwork_scrape_concurrent_total", "c").add(7);
  ScrapeServer server(ScrapeServerOptions{});
  ASSERT_TRUE(server.ok());

  constexpr int kReaders = 8;
  std::vector<std::string> bodies(kReaders);
  {
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        bodies[static_cast<std::size_t>(r)] =
            body_of(http_get(server.port(), "/metrics"));
      });
    }
    for (std::thread& t : readers) t.join();
  }
  for (const std::string& body : bodies) {
    EXPECT_NE(body.find("patchwork_scrape_concurrent_total 7\n"),
              std::string::npos);
  }
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(kReaders));
  server.stop();
}

TEST(ScrapeServer, StopUnblocksAcceptAndIsIdempotent) {
  auto server = std::make_unique<ScrapeServer>(ScrapeServerOptions{});
  ASSERT_TRUE(server->ok());
  const std::uint16_t port = server->port();
  // No connection in flight: stop() must not hang on accept().
  server->stop();
  server->stop();  // Idempotent.
  // The listener is gone: a new connection is refused (or immediately
  // closed), never served.
  EXPECT_EQ(http_get(port, "/metrics").rfind("HTTP/1.1 200", 0),
            std::string::npos);
  server.reset();  // Destructor after stop() is fine too.
}

}  // namespace
}  // namespace patchwork::obs
