// Flight-recorder unit contract: disabled means no recording (and near-zero
// cost), rings overwrite oldest and count drops instead of blocking, and the
// drained timeline renders as Chrome trace-event JSON.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace patchwork::obs::trace {
namespace {

/// Restores a quiet global trace state around each test.
class Trace : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(Trace, DisabledRecordsNothing) {
  ASSERT_FALSE(enabled());
  record_complete("ignored", 1, 2);
  record_instant("also_ignored");
  { const ScopedEvent scope("scoped_ignored"); }
  EXPECT_TRUE(snapshot_events().empty());
  EXPECT_EQ(dropped_events(), 0u);
}

TEST_F(Trace, RecordsCompleteAndInstantEventsWithArgs) {
  start(/*capacity_per_thread=*/64);
  ASSERT_TRUE(enabled());
  record_complete("render/compress", 100, 250,
                  {.site = 3, .sample = 1, .burst = 7});
  record_instant("marker");
  {
    const ScopedEvent scope("render_unit", {.site = 5});
  }
  stop();

  const std::vector<LaneEvent> events = snapshot_events();
  ASSERT_EQ(events.size(), 3u);

  const auto find = [&](const char* name) -> const Event* {
    for (const LaneEvent& le : events) {
      if (std::string(le.event.name) == name) return &le.event;
    }
    return nullptr;
  };
  const Event* complete = find("render/compress");
  ASSERT_NE(complete, nullptr);
  EXPECT_EQ(complete->phase, 'X');
  EXPECT_EQ(complete->begin_ns, 100u);
  EXPECT_EQ(complete->end_ns, 250u);
  EXPECT_EQ(complete->args.site, 3);
  EXPECT_EQ(complete->args.sample, 1);
  EXPECT_EQ(complete->args.burst, 7);

  const Event* instant = find("marker");
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(instant->phase, 'i');

  const Event* scoped = find("render_unit");
  ASSERT_NE(scoped, nullptr);
  EXPECT_EQ(scoped->phase, 'X');
  EXPECT_GE(scoped->end_ns, scoped->begin_ns);
  EXPECT_EQ(scoped->args.site, 5);
}

TEST_F(Trace, OverflowOverwritesOldestAndCountsDrops) {
  start(/*capacity_per_thread=*/4);
  const std::uint64_t drops_before = dropped_events();
  for (int i = 0; i < 10; ++i) {
    record_complete(i < 6 ? "old" : "new",
                    static_cast<std::uint64_t>(i),
                    static_cast<std::uint64_t>(i) + 1);
  }
  stop();
  // The ring keeps only the newest 4 of 10; 6 were overwritten.
  EXPECT_EQ(dropped_events() - drops_before, 6u);
  const std::vector<LaneEvent> events = snapshot_events();
  ASSERT_EQ(events.size(), 4u);
  for (const LaneEvent& le : events) {
    EXPECT_STREQ(le.event.name, "new");
  }
}

TEST_F(Trace, LongNamesAreTruncatedNotOverflowed) {
  start(64);
  const std::string long_name(200, 'n');
  record_complete(long_name, 1, 2);
  stop();
  const std::vector<LaneEvent> events = snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].event.name),
            std::string(Event::kNameCapacity - 1, 'n'));
}

TEST_F(Trace, EachThreadGetsItsOwnLane) {
  start(64);
  constexpr int kThreads = 4;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i <= t; ++i) record_complete("work", 1, 2);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  stop();
  const std::vector<LaneEvent> events = snapshot_events();
  // 1 + 2 + 3 + 4 events across four distinct lanes.
  EXPECT_EQ(events.size(), 10u);
  std::vector<std::uint32_t> lanes;
  for (const LaneEvent& le : events) lanes.push_back(le.lane);
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
  EXPECT_EQ(lanes.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(dropped_events(), 0u);
}

TEST_F(Trace, RendersChromeTraceJson) {
  start(64);
  record_complete("render/compress", 1000, 3500, {.site = 2, .sample = 0});
  record_instant("task_steal");
  stop();
  const std::string json = render_chrome_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"render/compress\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"patchwork\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"site\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sample\":0"), std::string::npos);
  // Durations are microseconds: 2500 ns -> 2.5 us.
  EXPECT_NE(json.find("\"dur\":2.5"), std::string::npos) << json;
  EXPECT_EQ(json.back(), '\n');
}

TEST_F(Trace, ResetClearsEventsAndDrops) {
  start(2);
  for (int i = 0; i < 8; ++i) record_complete("e", 0, 1);
  stop();
  ASSERT_FALSE(snapshot_events().empty());
  ASSERT_GT(dropped_events(), 0u);
  reset();
  EXPECT_TRUE(snapshot_events().empty());
  EXPECT_EQ(dropped_events(), 0u);
  EXPECT_FALSE(enabled());
}

TEST_F(Trace, EnvConfigurationParsesPathAndCapacity) {
  ::setenv("PATCHWORK_TRACE", "/tmp/patchwork_trace_test.json:128", 1);
  EXPECT_TRUE(configure_from_env());
  EXPECT_TRUE(enabled());
  EXPECT_EQ(env_configured_path(), "/tmp/patchwork_trace_test.json");
  record_complete("env_event", 10, 20);
  EXPECT_TRUE(write_env_configured());
  EXPECT_FALSE(enabled());  // write_env_configured() stops tracing.
  ::unsetenv("PATCHWORK_TRACE");
  ::remove("/tmp/patchwork_trace_test.json");
}

}  // namespace
}  // namespace patchwork::obs::trace
