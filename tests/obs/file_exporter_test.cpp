// The file exporter's contract: the snapshot file is always a complete
// exposition (atomic replace), and successive snapshots observe successive
// registry states — verified by tailing two snapshots around a counter
// bump.
#include "obs/file_exporter.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace patchwork::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Poll `path` until its contents contain `needle` or ~2s elapse.
bool wait_for_content(const std::string& path, const std::string& needle) {
  for (int i = 0; i < 400; ++i) {
    if (slurp(path).find(needle) != std::string::npos) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(ObsFileExporter, TailsTwoSnapshotsAcrossACounterBump) {
  const std::string path = ::testing::TempDir() + "/exporter_tail.prom";
  std::remove(path.c_str());
  Counter& tick = registry().counter("patchwork_exporter_test_total",
                                     "file exporter test counter");
  tick.add(1);

  FileExporter exporter(path, std::chrono::milliseconds(5));
  // Snapshot 1: the pre-bump state must appear on its own.
  ASSERT_TRUE(wait_for_content(path, "patchwork_exporter_test_total 1\n"));

  // Snapshot 2: a later period picks up the bump without any manual write.
  tick.add(41);
  ASSERT_TRUE(wait_for_content(path, "patchwork_exporter_test_total 42\n"));
  EXPECT_GE(exporter.snapshots_written(), 2u);

  exporter.stop();
  const std::uint64_t after_stop = exporter.snapshots_written();
  // stop() wrote a final complete snapshot and the thread is quiet.
  EXPECT_NE(slurp(path).find("patchwork_exporter_test_total 42\n"),
            std::string::npos);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(exporter.snapshots_written(), after_stop);
  std::remove(path.c_str());
}

TEST(ObsFileExporter, StopFlushesTheFinalRegistryState) {
  const std::string path = ::testing::TempDir() + "/exporter_flush.prom";
  std::remove(path.c_str());
  Counter& tick = registry().counter("patchwork_exporter_flush_total",
                                     "shutdown flush test counter");
  tick.add(1);

  // An hour-long period: the only snapshots are the immediate first one
  // and the shutdown flush — so the bump below can only reach the file
  // through stop().
  FileExporter exporter(path, std::chrono::hours(1));
  ASSERT_TRUE(wait_for_content(path, "patchwork_exporter_flush_total 1\n"));

  tick.add(99);
  EXPECT_TRUE(exporter.stop());
  EXPECT_TRUE(exporter.final_flush_ok());
  EXPECT_NE(slurp(path).find("patchwork_exporter_flush_total 100\n"),
            std::string::npos)
      << "stop() did not flush the post-bump state";
  // Idempotent: a second stop() reports the same outcome, writes nothing.
  const std::uint64_t written = exporter.snapshots_written();
  EXPECT_TRUE(exporter.stop());
  EXPECT_EQ(exporter.snapshots_written(), written);
  std::remove(path.c_str());
}

TEST(ObsFileExporter, SnapshotIsACompleteExposition) {
  const std::string path = ::testing::TempDir() + "/exporter_complete.prom";
  std::remove(path.c_str());
  registry().counter("patchwork_exporter_complete_total", "helper").add(3);
  {
    FileExporter exporter(path, std::chrono::milliseconds(5));
    ASSERT_TRUE(wait_for_content(path, "patchwork_exporter_complete_total"));
  }
  // The snapshot is byte-for-byte an expose_text() rendering (never a
  // partial write): every line parses as comment or sample.
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated final line";
    const std::string line = text.substr(start, end - start);
    EXPECT_TRUE(line.rfind("# ", 0) == 0 ||
                line.find(' ') != std::string::npos)
        << "unparseable line: " << line;
    start = end + 1;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace patchwork::obs
